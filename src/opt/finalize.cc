#include "opt/finalize.h"

#include <algorithm>
#include <map>
#include <vector>

namespace dynopt {

namespace {

/// Streaming accumulator for one aggregate over one group.
struct AggState {
  int64_t count = 0;
  Value sum;   ///< Running sum for kSum/kAvg (int64 or double domain).
  Value min;
  Value max;

  void Add(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || v > max) max = v;
    if (!v.IsNumeric()) return;  // SUM/AVG undefined over strings.
    if (v.type() == ValueType::kDouble || sum.type() == ValueType::kDouble) {
      double acc = sum.is_null()
                       ? 0.0
                       : (sum.type() == ValueType::kDouble
                              ? sum.AsDouble()
                              : static_cast<double>(sum.AsInt64()));
      sum = Value(acc + v.NumericKey());
    } else {
      int64_t acc = sum.is_null() ? 0 : sum.AsInt64();
      sum = Value(acc + v.AsInt64());
    }
  }

  Value Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kCount:
        return Value(count);
      case AggFn::kSum:
        return sum;
      case AggFn::kMin:
        return min;
      case AggFn::kMax:
        return max;
      case AggFn::kAvg:
        if (count == 0 || sum.is_null()) return Value::Null();
        return Value(sum.NumericKey() / static_cast<double>(count));
    }
    return Value::Null();
  }
};

}  // namespace

Status ApplyPostProcessing(const QuerySpec& spec, const ClusterConfig& cluster,
                           OptimizerRunResult* result) {
  if (!spec.HasPostProcessing()) return Status::OK();

  const std::vector<std::string>& in_columns = result->columns;
  auto slot_of = [&](const std::string& name) -> int {
    for (size_t i = 0; i < in_columns.size(); ++i) {
      if (in_columns[i] == name) return static_cast<int>(i);
    }
    return -1;
  };

  const uint64_t input_rows = result->rows.size();
  std::vector<std::string> out_columns = spec.OutputColumns();
  std::vector<Row> out_rows;

  if (!spec.aggregates.empty() || !spec.group_by.empty()) {
    std::vector<int> group_slots;
    for (const auto& col : spec.group_by) {
      int slot = slot_of(col);
      if (slot < 0) {
        return Status::ExecutionError("GROUP BY column " + col +
                                      " missing from join output");
      }
      group_slots.push_back(slot);
    }
    std::vector<int> agg_slots;
    for (const auto& agg : spec.aggregates) {
      int slot = slot_of(agg.input);
      if (slot < 0) {
        return Status::ExecutionError("aggregate input " + agg.input +
                                      " missing from join output");
      }
      agg_slots.push_back(slot);
    }
    // Hash aggregation. (The simulated cluster would pre-aggregate locally
    // and shuffle partials; the cost charge below models exactly that.)
    std::map<Row, std::vector<AggState>> groups;
    for (const Row& row : result->rows) {
      Row key;
      key.reserve(group_slots.size());
      for (int slot : group_slots) key.push_back(row[static_cast<size_t>(slot)]);
      auto [it, inserted] = groups.try_emplace(
          std::move(key), std::vector<AggState>(spec.aggregates.size()));
      for (size_t a = 0; a < agg_slots.size(); ++a) {
        it->second[a].Add(row[static_cast<size_t>(agg_slots[a])]);
      }
    }
    out_rows.reserve(groups.size());
    for (const auto& [key, states] : groups) {
      Row row = key;
      for (size_t a = 0; a < states.size(); ++a) {
        row.push_back(states[a].Finish(spec.aggregates[a].fn));
      }
      out_rows.push_back(std::move(row));
    }
  } else {
    out_rows = std::move(result->rows);
    out_columns = in_columns;
  }

  // ORDER BY with a deterministic total order: the explicit keys first,
  // then every remaining output column ascending (stable across
  // strategies even when the explicit keys tie).
  if (!spec.order_by.empty() || spec.limit >= 0) {
    std::vector<std::pair<int, bool>> sort_keys;  // (slot, descending)
    std::vector<bool> used(out_columns.size(), false);
    for (const auto& key : spec.order_by) {
      for (size_t i = 0; i < out_columns.size(); ++i) {
        if (out_columns[i] == key.column) {
          sort_keys.emplace_back(static_cast<int>(i), key.descending);
          used[i] = true;
        }
      }
    }
    for (size_t i = 0; i < out_columns.size(); ++i) {
      if (!used[i]) sort_keys.emplace_back(static_cast<int>(i), false);
    }
    std::sort(out_rows.begin(), out_rows.end(),
              [&](const Row& a, const Row& b) {
                for (const auto& [slot, desc] : sort_keys) {
                  int c = a[static_cast<size_t>(slot)].Compare(
                      b[static_cast<size_t>(slot)]);
                  if (c != 0) return desc ? c > 0 : c < 0;
                }
                return false;
              });
  }
  if (spec.limit >= 0 &&
      out_rows.size() > static_cast<size_t>(spec.limit)) {
    out_rows.resize(static_cast<size_t>(spec.limit));
  }

  // Cost model: local partial aggregation over the input, shuffle of the
  // (much smaller) partials, final merge + sort of the groups.
  const double n = static_cast<double>(cluster.num_nodes);
  uint64_t group_bytes = 0;
  for (const Row& row : out_rows) group_bytes += RowSizeBytes(row);
  double agg_seconds =
      (static_cast<double>(input_rows) / n) * cluster.cpu_seconds_per_tuple;
  double shuffle_seconds = (static_cast<double>(group_bytes) / n) *
                           cluster.network_seconds_per_byte;
  double sort_seconds = static_cast<double>(out_rows.size()) *
                        cluster.cpu_seconds_per_tuple;
  result->metrics.tuples_processed += input_rows + out_rows.size();
  result->metrics.bytes_shuffled += group_bytes;
  result->metrics.simulated_seconds +=
      agg_seconds + shuffle_seconds + sort_seconds;

  result->columns = std::move(out_columns);
  result->rows = std::move(out_rows);
  result->metrics.rows_out = result->rows.size();
  return Status::OK();
}

}  // namespace dynopt
