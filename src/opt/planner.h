#ifndef DYNOPT_OPT_PLANNER_H_
#define DYNOPT_OPT_PLANNER_H_

#include <memory>
#include <string>

#include <vector>

#include "common/status.h"
#include "exec/cluster.h"
#include "opt/cardinality.h"
#include "opt/decision_log.h"
#include "opt/join_tree.h"
#include "plan/query_spec.h"
#include "storage/catalog.h"

namespace dynopt {

/// Planner knobs shared by the optimizers.
struct PlannerOptions {
  bool enable_broadcast = true;
  /// Consider the indexed nested loop join (Figure 8 experiments).
  bool enable_inlj = false;
  EstimationOptions estimation;
};

/// One planned join step: the chosen edge, its estimated result size and
/// the physical method, with the build (broadcast/outer) side identified.
struct PlannedJoin {
  JoinEdge edge;
  double estimated_cardinality = 0;
  double estimated_bytes = 0;
  JoinMethod method = JoinMethod::kHashShuffle;
  /// Alias of the side used as hash build / broadcast / INLJ outer.
  std::string build_alias;
  /// Estimated exec-cost (simulated seconds) of the chosen method; <0 when
  /// the planner did not cost it.
  double estimated_cost = -1;
  /// Alternatives considered and rejected while planning this step:
  /// "method: ..." entries (cost = exec-cost seconds) from the algorithm
  /// choice, "join-order: ..." entries (cost = estimated rows) from the
  /// edge choice. Feeds the optimizer decision log.
  std::vector<PlanAlternative> rejected;

  std::string ToString() const;
};

/// The paper's Planner stage (Section 5.2 / Algorithm 1 lines 25-33): finds
/// the join with the least estimated result cardinality under the current
/// statistics, picks the best algorithm for it, and — when only two joins
/// remain — orders the final two joins.
class Planner {
 public:
  Planner(const StatsView* view, const ClusterConfig& cluster,
          const PlannerOptions& options);

  /// The cheapest next join among the query's remaining edges.
  Result<PlannedJoin> PickNextJoin() const;

  /// Called when at most two joins remain: produces the complete join tree
  /// for the rest of the query (min-cardinality join innermost). With a
  /// non-null `steps`, appends the planned join step(s) in execution order
  /// (inner first) so callers can log the decisions.
  Result<std::shared_ptr<const JoinTree>> PlanRemaining(
      std::vector<PlannedJoin>* steps = nullptr) const;

  /// Applies the join-algorithm rules (Section 6.1.2) to one edge given
  /// the estimated sizes of its two inputs. `left/right_bytes` are
  /// post-predicate estimates; `left/right_rows` likewise.
  PlannedJoin DecorateWithMethod(const JoinEdge& edge, double card,
                                 double left_rows, double left_bytes,
                                 double right_rows, double right_bytes) const;

  const CardinalityEstimator& estimator() const { return estimator_; }

 private:
  /// True when the INLJ preconditions hold for probing `inner_alias` with
  /// a broadcast of the other side: single-column key, inner is a base
  /// dataset with a secondary index on that key and no local predicates,
  /// and the broadcast side is filtered.
  bool InljApplicable(const JoinEdge& edge, const std::string& outer_alias,
                      const std::string& inner_alias) const;

  const StatsView* view_;
  ClusterConfig cluster_;
  PlannerOptions options_;
  CardinalityEstimator estimator_;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_PLANNER_H_
