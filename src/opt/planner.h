#ifndef DYNOPT_OPT_PLANNER_H_
#define DYNOPT_OPT_PLANNER_H_

#include <map>
#include <memory>
#include <string>

#include <vector>

#include "common/status.h"
#include "exec/cluster.h"
#include "opt/cardinality.h"
#include "opt/decision_log.h"
#include "opt/join_tree.h"
#include "plan/query_spec.h"
#include "storage/catalog.h"

namespace dynopt {

/// Multiplicative widening of the selectivity confidence interval, built
/// from observed q-errors (this query's decision log) and cross-query
/// priors (opt/error_stats.h). The planner costs with *pessimistic* sizes —
/// estimate x factor — while reporting the expected estimate in the
/// decision log, so a strategy that has already been burned by a bad
/// estimate stops trusting marginal cost differences (e.g. a broadcast that
/// is only safe if the estimate is exact). A default-constructed risk is
/// neutral: every factor is 1 and planning is bit-identical to no risk.
struct SelectivityRisk {
  /// Applied to every join *output* estimate (the least observable size).
  double global_factor = 1.0;
  /// Per-alias input widening (keyed by query alias); absent alias = 1.
  /// Intermediates have exact counts, so they normally carry no entry.
  std::map<std::string, double> alias_factors;
  /// Provenance of the dominant cross-query prior behind this risk: the
  /// ErrorStatsStore key whose factor was largest and that factor, filled
  /// by PriorRisk() (empty/1.0 for feedback-only or neutral risks). Copied
  /// onto the decisions planned under this risk so EXPLAIN can name the
  /// prior that shaped a plan ("prior=<key>x<factor>").
  std::string prior_key;
  double prior_factor = 1.0;

  double FactorFor(const std::string& alias) const {
    auto it = alias_factors.find(alias);
    return it == alias_factors.end() ? 1.0 : it->second;
  }
  bool IsNeutral() const {
    if (global_factor > 1.0) return false;
    for (const auto& [alias, f] : alias_factors) {
      (void)alias;
      if (f > 1.0) return false;
    }
    return true;
  }
};

/// Planner knobs shared by the optimizers.
struct PlannerOptions {
  bool enable_broadcast = true;
  /// Consider the indexed nested loop join (Figure 8 experiments).
  bool enable_inlj = false;
  EstimationOptions estimation;
};

/// One planned join step: the chosen edge, its estimated result size and
/// the physical method, with the build (broadcast/outer) side identified.
struct PlannedJoin {
  JoinEdge edge;
  double estimated_cardinality = 0;
  double estimated_bytes = 0;
  JoinMethod method = JoinMethod::kHashShuffle;
  /// Alias of the side used as hash build / broadcast / INLJ outer.
  std::string build_alias;
  /// Estimated exec-cost (simulated seconds) of the chosen method; <0 when
  /// the planner did not cost it.
  double estimated_cost = -1;
  /// Where `estimated_cardinality` came from: "sketch" when a Fast-AGMS
  /// join-size sketch answered, "stats" when the planner had sketches
  /// attached but fell back to formula (1), empty when sketches were never
  /// in play (the default — keeps historical rendering byte-identical).
  std::string provenance;
  /// Alternatives considered and rejected while planning this step:
  /// "method: ..." entries (cost = exec-cost seconds) from the algorithm
  /// choice, "join-order: ..." entries (cost = estimated rows) from the
  /// edge choice. Feeds the optimizer decision log.
  std::vector<PlanAlternative> rejected;

  std::string ToString() const;
};

/// The paper's Planner stage (Section 5.2 / Algorithm 1 lines 25-33): finds
/// the join with the least estimated result cardinality under the current
/// statistics, picks the best algorithm for it, and — when only two joins
/// remain — orders the final two joins.
class Planner {
 public:
  /// `risk` (optional, non-owning, must outlive the planner) widens size
  /// estimates while costing; nullptr or a neutral risk reproduces the
  /// historical behavior exactly. `sketches` (optional, non-owning, must
  /// outlive the planner) lets the estimator answer join cardinalities from
  /// Fast-AGMS sketches where available; nullptr plans purely from stats.
  Planner(const StatsView* view, const ClusterConfig& cluster,
          const PlannerOptions& options,
          const SelectivityRisk* risk = nullptr,
          const SketchManager* sketches = nullptr);

  /// The cheapest next join among the query's remaining edges.
  Result<PlannedJoin> PickNextJoin() const;

  /// Called when at most two joins remain: produces the complete join tree
  /// for the rest of the query (min-cardinality join innermost). With a
  /// non-null `steps`, appends the planned join step(s) in execution order
  /// (inner first) so callers can log the decisions.
  Result<std::shared_ptr<const JoinTree>> PlanRemaining(
      std::vector<PlannedJoin>* steps = nullptr) const;

  /// Applies the join-algorithm rules (Section 6.1.2) to one edge given
  /// the estimated sizes of its two inputs. `left/right_bytes` are
  /// post-predicate estimates; `left/right_rows` likewise.
  PlannedJoin DecorateWithMethod(const JoinEdge& edge, double card,
                                 double left_rows, double left_bytes,
                                 double right_rows, double right_bytes) const;

  const CardinalityEstimator& estimator() const { return estimator_; }

 private:
  /// True when the INLJ preconditions hold for probing `inner_alias` with
  /// a broadcast of the other side: single-column key, inner is a base
  /// dataset with a secondary index on that key and no local predicates,
  /// and the broadcast side is filtered.
  bool InljApplicable(const JoinEdge& edge, const std::string& outer_alias,
                      const std::string& inner_alias) const;

  double RiskFactor(const std::string& alias) const {
    return risk_ == nullptr ? 1.0 : risk_->FactorFor(alias);
  }

  /// Sketch-first cardinality for `edge`: the AGMS estimate when both sides
  /// carry sketches, formula (1) otherwise. `provenance` (may be null)
  /// receives "sketch"/"stats" when sketches are attached, "" when not.
  double EstimateEdgeCardinality(const JoinEdge& edge, double left_override,
                                 double right_override,
                                 std::string* provenance) const;

  const StatsView* view_;
  ClusterConfig cluster_;
  PlannerOptions options_;
  const SelectivityRisk* risk_;
  CardinalityEstimator estimator_;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_PLANNER_H_
