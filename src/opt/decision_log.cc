#include "opt/decision_log.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "common/metrics_registry.h"

namespace dynopt {

namespace {

std::string FormatRows(double rows) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(rows + 0.5));
  return buf;
}

std::string FormatQError(double q) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", q);
  return buf;
}

}  // namespace

std::string PlanAlternative::ToString() const {
  std::ostringstream os;
  os << description << " (cost " << cost << ")";
  return os.str();
}

double PlanDecision::QError() const {
  if (estimated_rows < 0 || actual_rows < 0) return 0;
  double est = std::max(estimated_rows, 1.0);
  double actual = std::max(actual_rows, 1.0);
  return std::max(est / actual, actual / est);
}

std::string PlanDecision::ToString() const {
  std::ostringstream os;
  os << "#" << id << " " << point << ": " << chosen;
  if (estimated_rows >= 0) os << " est_rows=" << FormatRows(estimated_rows);
  if (!provenance.empty()) os << " est_src=" << provenance;
  if (!prior_key.empty()) {
    os << " prior=" << prior_key << "x" << FormatQError(prior_factor);
  }
  if (has_actual()) {
    os << " actual_rows=" << FormatRows(actual_rows)
       << " q_error=" << FormatQError(QError());
  }
  if (estimated_cost >= 0) os << " est_cost=" << estimated_cost;
  for (const auto& alt : rejected) {
    os << "\n    rejected: " << alt.ToString();
  }
  return os.str();
}

int DecisionLog::Record(PlanDecision decision) {
  decision.id = static_cast<int>(decisions_.size());
  decisions_.push_back(std::move(decision));
  return decisions_.back().id;
}

void DecisionLog::SetActual(int id, double rows) {
  if (id < 0 || id >= static_cast<int>(decisions_.size())) return;
  decisions_[static_cast<size_t>(id)].actual_rows = rows;
}

size_t DecisionLog::NumWithActuals() const {
  size_t n = 0;
  for (const auto& d : decisions_) {
    if (d.has_actual()) ++n;
  }
  return n;
}

double DecisionLog::MaxQError() const {
  double worst = 0;
  for (const auto& d : decisions_) {
    worst = std::max(worst, d.QError());
  }
  return worst;
}

double DecisionLog::GeoMeanQError() const {
  double sum_log = 0;
  size_t n = 0;
  for (const auto& d : decisions_) {
    const double q = d.QError();
    if (q >= 1.0) {
      sum_log += std::log(q);
      ++n;
    }
  }
  return n == 0 ? 1.0 : std::exp(sum_log / static_cast<double>(n));
}

std::string DecisionLog::ToString() const {
  std::ostringstream os;
  for (const auto& d : decisions_) os << d.ToString() << "\n";
  return os.str();
}

std::string SubtreeKey(const std::set<std::string>& aliases) {
  std::string key;
  for (const auto& alias : aliases) {
    if (!key.empty()) key += '+';
    key += alias;
  }
  return key;
}

void FinalizeProfile(QueryProfile* profile, ExecMetrics* metrics,
                     TraceSpan* query_span, MetricsRegistry* reg) {
  DYNOPT_CHECK(profile != nullptr && metrics != nullptr);
  metrics->max_q_error = profile->decisions.MaxQError();
  metrics->num_decisions = profile->decisions.decisions().size();
  // Engine-wide estimation-quality telemetry: a log2 histogram of rounded
  // per-decision q-errors (bucket 1 = spot-on, each doubling one bucket
  // up) so operators can watch the error distribution across queries, not
  // just the per-query max that survives in ExecMetrics.
  auto& registry = reg != nullptr ? *reg : MetricsRegistry::Global();
  Histogram* q_hist = registry.histogram("opt.q_error");
  uint64_t with_actuals = 0;
  for (const auto& d : profile->decisions.decisions()) {
    const double q = d.QError();
    if (q >= 1.0) {
      q_hist->Record(static_cast<uint64_t>(std::llround(q)));
      ++with_actuals;
    }
  }
  registry.counter("opt.decisions")->Increment(
      profile->decisions.decisions().size());
  registry.counter("opt.decisions_with_actuals")->Increment(with_actuals);
  profile->metrics = *metrics;
  if (query_span != nullptr) {
    query_span->SetSimSeconds(metrics->simulated_seconds);
    query_span->AddArg("max_q_error", metrics->max_q_error);
    query_span->End();
  }
  if (Tracer::Global().enabled()) {
    profile->trace = Tracer::Global().Drain();
  }
}

}  // namespace dynopt
