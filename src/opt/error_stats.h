#ifndef DYNOPT_OPT_ERROR_STATS_H_
#define DYNOPT_OPT_ERROR_STATS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "opt/planner.h"
#include "plan/expr.h"
#include "plan/query_spec.h"

namespace dynopt {

class Engine;

/// Bounded q-error aggregate for one estimation site (a table+predicate
/// fingerprint or a join alias set).
struct ErrorStatsEntry {
  uint64_t count = 0;
  /// Sum of ln(q-error) — the geometric mean exp(sum/count) is the
  /// calibrated misestimation factor (robust to a single outlier run).
  double sum_log_q = 0;
  double max_q = 1.0;

  double GeoMeanQ() const;
};

/// Cross-query error memory: per-table/per-predicate and per-join q-error
/// aggregates observed by past runs, persisted to disk so the cost-based
/// and pilot-run strategies start each query with calibrated priors instead
/// of the independence assumption's defaults.
///
/// Durability contract (the store must never fail a query):
///  - Save() writes the whole store to `<path>.tmp` and renames it into
///    place — readers never see a torn file, and two racing writers leave
///    one writer's complete file, not a mix.
///  - The file is version-tagged and checksummed (FNV over the payload);
///    Load() treats a missing file as empty, and a truncated/corrupt/
///    version-mismatched file as "warn and start fresh" — always OK.
///  - The entry map is bounded (`max_entries`); new keys beyond the bound
///    are dropped and counted, never an error.
/// All methods are thread-safe (one mutex; aggregates are tiny).
class ErrorStatsStore {
 public:
  /// `path` empty = in-memory only (Load/Save become no-ops returning OK).
  explicit ErrorStatsStore(std::string path, size_t max_entries = 4096);

  /// Records one observed q-error (>= 1) for `key`. Values below 1 or
  /// non-finite are ignored (a q-error is max(est/actual, actual/est), so
  /// anything else is a caller bug upstream, not worth poisoning the
  /// store over).
  void Record(const std::string& key, double q_error);

  /// Calibrated misestimation prior for `key`: the geometric mean of its
  /// recorded q-errors clamped to [1, cap]. Unknown key (or any internal
  /// problem) => 1.0 — the neutral factor; this never fails.
  double PriorFactor(const std::string& key, double cap) const;

  /// Loads from the path (replacing in-memory state). Missing file, bad
  /// version, bad checksum, truncation: warn + start empty + return OK.
  /// Only an unreadable-but-existing file surfaces a status (callers may
  /// still ignore it; the store is usable either way).
  Status Load();

  /// Atomically persists the current state (tmp file + rename).
  Status Save() const;

  size_t NumEntries() const;
  /// Keys refused because the store was at max_entries.
  uint64_t DroppedKeys() const;
  /// Snapshot of one entry; count == 0 when the key is unknown.
  ErrorStatsEntry Get(const std::string& key) const;
  /// Snapshot of every (key, entry) pair, sorted by key — the rows
  /// `sys.error_stats` materializes.
  std::vector<std::pair<std::string, ErrorStatsEntry>> Entries() const;

  const std::string& path() const { return path_; }

 private:
  const std::string path_;
  const size_t max_entries_;
  mutable std::mutex mu_;
  std::map<std::string, ErrorStatsEntry> entries_;
  uint64_t dropped_keys_ = 0;
};

/// Canonical store key for a base-table scan under local predicates:
/// "tbl:<table>" when `predicates` is empty, otherwise
/// "tbl:<table>|p:<hex fingerprint>" where the fingerprint hashes the
/// predicates' printed forms (order-insensitive). Correlated predicates on
/// the same table+predicate set hash to the same key across queries, which
/// is exactly what makes the prior transferable.
std::string TableErrorKey(const std::string& table,
                          const std::vector<ExprPtr>& predicates);

/// Canonical store key for a join over `base_tables` (catalog names, not
/// aliases): "join:<sorted names joined with '+'>". Duplicate names are
/// kept (self-joins of the same table are a different shape than a single
/// scan).
std::string JoinErrorKey(std::vector<std::string> base_tables);

/// The engine-scoped shared store, (re)built lazily from
/// engine->cluster().risk: every optimizer of one engine calls this
/// instead of owning a store, so queries share (and persist to) one error
/// memory. The store lives in the engine's type-erased opt_state() slot
/// (the exec layer cannot name opt types) and is rebuilt — with a fail-soft
/// Load() — whenever risk.error_stats_path / error_store_max_entries
/// change, mirroring the engine's Rearm* pattern. Returns nullptr when
/// risk.use_error_store is off (the default). Thread-safe.
ErrorStatsStore* EngineErrorStats(Engine* engine);

/// Prior-only risk for `spec` from the store: per-alias widening factors
/// from each base table's TableErrorKey and a global factor from the
/// query's JoinErrorKey, all clamped to [1, cap]. Null store, unknown keys
/// or intermediates => neutral entries. Never fails.
SelectivityRisk PriorRisk(const QuerySpec& spec, const ErrorStatsStore* store,
                          double cap);

}  // namespace dynopt

#endif  // DYNOPT_OPT_ERROR_STATS_H_
