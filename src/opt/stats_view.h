#ifndef DYNOPT_OPT_STATS_VIEW_H_
#define DYNOPT_OPT_STATS_VIEW_H_

#include <map>
#include <string>

#include "plan/query_spec.h"
#include "stats/table_stats.h"
#include "storage/catalog.h"

namespace dynopt {

/// Uniform, query-scoped view over the statistics framework: maps a query
/// alias (base table or materialized intermediate) and a qualified column
/// name to the right TableStats entry. Base tables store column stats under
/// unqualified names; intermediates store them under the qualified names
/// they carry.
class StatsView {
 public:
  StatsView(const QuerySpec* spec, const StatsManager* stats,
            const Catalog* catalog)
      : spec_(spec), stats_(stats), catalog_(catalog) {}

  /// Installs per-alias statistics that take precedence over the
  /// StatsManager — how pilot-run feeds its sample-derived estimates to the
  /// planner (distinct aliases of the same base table can carry different
  /// sampled stats). Column stats in overrides use unqualified names.
  void SetAliasOverrides(const std::map<std::string, TableStats>* overrides) {
    alias_overrides_ = overrides;
  }

  /// Row count of the dataset behind `alias` (before local predicates),
  /// from stats when available, falling back to catalog truth. Returns 0
  /// for unknown aliases.
  double RowCount(const std::string& alias) const;

  /// Byte size of the dataset behind `alias`.
  double TotalBytes(const std::string& alias) const;

  /// Column statistics for qualified column `name` on `alias`; nullptr when
  /// not collected.
  const ColumnStatsSnapshot* Column(const std::string& alias,
                                    const std::string& name) const;

  const QuerySpec& spec() const { return *spec_; }
  const Catalog* catalog() const { return catalog_; }

 private:
  const TableStats* TableStatsFor(const std::string& alias) const;

  const QuerySpec* spec_;
  const StatsManager* stats_;
  const Catalog* catalog_;
  const std::map<std::string, TableStats>* alias_overrides_ = nullptr;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_STATS_VIEW_H_
