#ifndef DYNOPT_OPT_EXPLAIN_H_
#define DYNOPT_OPT_EXPLAIN_H_

#include <memory>
#include <string>

#include "exec/engine.h"
#include "opt/join_tree.h"
#include "plan/query_spec.h"

namespace dynopt {

/// EXPLAIN for the static strategies: plans `spec` with the DP cost-based
/// optimizer (without executing anything) and renders the join tree with
/// the estimator's per-subtree cardinality/byte estimates — the
/// plan-inspection surface a user of the engine would reach for before
/// running an expensive query.
///
/// Example output:
///
///   Join[BROADCAST] est_rows=480 est_bytes=38.4KB
///     Scan d1 (filtered) est_rows=30
///     Scan ss est_rows=28800
///
/// The dynamic optimizer cannot be explained without executing (its plan
/// *is* discovered at runtime); use OptimizerRunResult::plan_trace for the
/// after-the-fact narrative instead.
Result<std::string> ExplainStatic(Engine* engine, const QuerySpec& query);

/// Renders an already-decided join tree with estimates from the current
/// statistics (used to pretty-print recorded dynamic plans too).
Result<std::string> ExplainTree(Engine* engine, const QuerySpec& spec,
                                const JoinTree& tree);

}  // namespace dynopt

#endif  // DYNOPT_OPT_EXPLAIN_H_
