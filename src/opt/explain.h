#ifndef DYNOPT_OPT_EXPLAIN_H_
#define DYNOPT_OPT_EXPLAIN_H_

#include <memory>
#include <string>

#include "exec/engine.h"
#include "opt/join_tree.h"
#include "opt/optimizer.h"
#include "plan/query_spec.h"

namespace dynopt {

/// EXPLAIN for the static strategies: plans `spec` with the DP cost-based
/// optimizer (without executing anything) and renders the join tree with
/// the estimator's per-subtree cardinality/byte estimates — the
/// plan-inspection surface a user of the engine would reach for before
/// running an expensive query.
///
/// Example output:
///
///   Join[BROADCAST] est_rows=480 est_bytes=38.4KB
///     Scan d1 (filtered) est_rows=30
///     Scan ss est_rows=28800
///
/// The dynamic optimizer cannot be explained without executing (its plan
/// *is* discovered at runtime); use OptimizerRunResult::plan_trace for the
/// after-the-fact narrative instead.
Result<std::string> ExplainStatic(Engine* engine, const QuerySpec& query);

/// Renders an already-decided join tree with estimates from the current
/// statistics (used to pretty-print recorded dynamic plans too).
Result<std::string> ExplainTree(Engine* engine, const QuerySpec& spec,
                                const JoinTree& tree);

/// Estimated output cardinality of `tree` under the current statistics
/// (bottom-up, same model ExplainTree prints). Used to log plan-level
/// estimates for strategies that pick a tree without costing it edge by
/// edge (best-order, worst-order).
Result<double> EstimateTreeCardinality(Engine* engine, const QuerySpec& spec,
                                       const JoinTree& tree);

/// EXPLAIN ANALYZE: renders the executed run's effective join tree with
/// both estimated and actual per-subtree cardinalities (q-error where both
/// are known), followed by the optimizer's full decision log (estimates,
/// chosen algorithm, rejected alternatives, back-patched actuals) and the
/// run's deterministic execution counters (simulated seconds, spill/retry/
/// memory). Requires run.profile (always set by the six strategies); host
/// wall-clock values are deliberately excluded so the output is stable
/// across machines (golden-tested on TPC-H Q9).
Result<std::string> ExplainAnalyze(Engine* engine, const QuerySpec& query,
                                   const OptimizerRunResult& run);

}  // namespace dynopt

#endif  // DYNOPT_OPT_EXPLAIN_H_
