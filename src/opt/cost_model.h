#ifndef DYNOPT_OPT_COST_MODEL_H_
#define DYNOPT_OPT_COST_MODEL_H_

#include "exec/cluster.h"
#include "exec/job.h"

namespace dynopt {

/// Plan-time estimates of one join's inputs/output, in rows and bytes
/// (post local predicates).
struct JoinCostInputs {
  double build_rows = 0;   ///< Small / outer side.
  double build_bytes = 0;
  double probe_rows = 0;   ///< Large / inner side.
  double probe_bytes = 0;
  double out_rows = 0;
  double out_bytes = 0;
  /// Per-node join build-side memory budget the executor will enforce
  /// (ClusterConfig.memory.join_memory_budget_bytes); 0 = unlimited. When
  /// positive, a build side whose per-node resident size exceeds it is
  /// priced with the grace-hash spill passes the executor actually runs.
  /// Callers set this only when ClusterConfig.risk.spill_aware_costing is
  /// on, so default-config costs are byte-identical to the spill-blind
  /// model.
  uint64_t memory_budget_bytes = 0;
};

/// Decomposed join cost: the total plus the spill-path share, so tests can
/// hold the model against ExecMetrics.spilled_bytes metered on the same
/// plan and benches can report predicted spill volume per decision.
struct JoinCostBreakdown {
  /// Total estimated simulated seconds (includes spill_seconds).
  double cost = 0;
  /// Share attributable to grace-join spilling (disk passes + repartition
  /// CPU); 0 when the build side fits the budget or no budget is set.
  double spill_seconds = 0;
  /// Predicted ExecMetrics.spilled_bytes: bytes written to spill files,
  /// summed over nodes and recursion passes (each is also read back —
  /// that read is charged in spill_seconds, not counted again here).
  double spilled_bytes = 0;
  /// Predicted grace-join recursion depth per overflowing node (0 = in
  /// memory; capped at memory.max_spill_recursion like the executor).
  int spill_passes = 0;
};

/// Estimated simulated-seconds cost of executing one join with `method`,
/// mirroring the executor's charging rules (JobExecutor): shuffles charge
/// per-node received network bytes, broadcasts charge the full build size
/// at every node, the indexed NLJ charges per-row index lookups but reads
/// only matched inner bytes — and *skips the inner scan entirely*, which is
/// what makes it attractive for selective probes.
///
/// With `in.memory_budget_bytes > 0` the hash paths additionally mirror
/// JobExecutor::GraceJoinPartition: every recursion level whose per-node
/// build share still exceeds the budget writes and reads back the whole
/// build+probe pair once (disk rates) and re-partitions every row (CPU),
/// up to memory.max_spill_recursion levels with memory.max_spill_fanout-way
/// splits. A shuffle's per-node build share is build_bytes/num_nodes; a
/// broadcast replicates the full build to every node, which is exactly why
/// a tight budget can flip the broadcast-vs-shuffle choice.
///
/// `probe_scan_bytes` is the cost the inner side's scan would incur (the
/// INLJ alternative saves it); pass probe_bytes when the inner is a plain
/// base-table scan.
double EstimateJoinExecCost(JoinMethod method, const JoinCostInputs& in,
                            const ClusterConfig& cluster,
                            double probe_scan_bytes);

/// Same model with the spill share broken out.
JoinCostBreakdown EstimateJoinExecCostDetail(JoinMethod method,
                                             const JoinCostInputs& in,
                                             const ClusterConfig& cluster,
                                             double probe_scan_bytes);

/// Estimated cost of scanning `bytes`/`rows` spread over the cluster.
double EstimateScanCost(double bytes, double rows, const ClusterConfig& cluster,
                        bool is_intermediate);

/// Bytes of a `bytes`-sized input that stay memory-resident cluster-wide
/// under the grace-join budget: with a per-node join budget configured, a
/// build side never pins more than budget bytes per node (the overflow
/// lives in spill files), so the resident set is min(bytes, budget *
/// num_nodes). With no budget (0, the default) the input is fully resident
/// and the value is `bytes` unchanged. EstimateQueryReservationBytes
/// (opt/degrade.h) routes through this so admission reservations agree
/// with what the spill-aware executor will actually pin.
double EstimateResidentBytes(double bytes, const ClusterConfig& cluster);

}  // namespace dynopt

#endif  // DYNOPT_OPT_COST_MODEL_H_
