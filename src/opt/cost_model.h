#ifndef DYNOPT_OPT_COST_MODEL_H_
#define DYNOPT_OPT_COST_MODEL_H_

#include "exec/cluster.h"
#include "exec/job.h"

namespace dynopt {

/// Plan-time estimates of one join's inputs/output, in rows and bytes
/// (post local predicates).
struct JoinCostInputs {
  double build_rows = 0;   ///< Small / outer side.
  double build_bytes = 0;
  double probe_rows = 0;   ///< Large / inner side.
  double probe_bytes = 0;
  double out_rows = 0;
  double out_bytes = 0;
};

/// Estimated simulated-seconds cost of executing one join with `method`,
/// mirroring the executor's charging rules (JobExecutor): shuffles charge
/// per-node received network bytes, broadcasts charge the full build size
/// at every node, the indexed NLJ charges per-row index lookups but reads
/// only matched inner bytes — and *skips the inner scan entirely*, which is
/// what makes it attractive for selective probes.
///
/// `probe_scan_bytes` is the cost the inner side's scan would incur (the
/// INLJ alternative saves it); pass probe_bytes when the inner is a plain
/// base-table scan.
double EstimateJoinExecCost(JoinMethod method, const JoinCostInputs& in,
                            const ClusterConfig& cluster,
                            double probe_scan_bytes);

/// Estimated cost of scanning `bytes`/`rows` spread over the cluster.
double EstimateScanCost(double bytes, double rows, const ClusterConfig& cluster,
                        bool is_intermediate);

}  // namespace dynopt

#endif  // DYNOPT_OPT_COST_MODEL_H_
