#include "opt/optimizer.h"

#include <algorithm>

namespace dynopt {

void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].Compare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
}

}  // namespace dynopt
