#ifndef DYNOPT_OPT_PLAN_BUILDER_H_
#define DYNOPT_OPT_PLAN_BUILDER_H_

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "exec/job.h"
#include "opt/join_tree.h"
#include "plan/query_spec.h"
#include "storage/catalog.h"

namespace dynopt {

/// Qualified columns of `alias` referenced anywhere in the query:
/// projections, join keys and local predicates. This is the projection list
/// the paper pushes into single-variable subqueries ("the SELECT clause is
/// defined by attributes that participate in the remaining query").
std::vector<std::string> RequiredColumns(const QuerySpec& spec,
                                         const std::string& alias,
                                         bool include_predicate_columns);

/// Leaf access plan for `alias`: scan (with projection pushdown) plus its
/// local predicates.
Result<std::unique_ptr<PlanNode>> BuildLeafPlan(const QuerySpec& spec,
                                                const std::string& alias);

/// All equi-join key pairs connecting the alias sets `left` and `right`
/// (first element of each pair provided by `left`). Errors when the sets
/// are not connected (would be a cross product).
Result<std::vector<std::pair<std::string, std::string>>> KeysBetween(
    const QuerySpec& spec, const std::set<std::string>& left,
    const std::set<std::string>& right);

/// Lowers a join-order tree to a physical job plan. When
/// `project_result` is set the root is wrapped in a projection to the
/// query's SELECT list.
Result<std::unique_ptr<PlanNode>> BuildPhysicalPlan(const QuerySpec& spec,
                                                    const JoinTree& tree,
                                                    bool project_result);

}  // namespace dynopt

#endif  // DYNOPT_OPT_PLAN_BUILDER_H_
