#include "opt/error_stats.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/hash.h"
#include "common/logging.h"
#include "exec/engine.h"

namespace dynopt {

namespace {

constexpr const char kMagic[] = "DYNOPT_ERRSTATS";
constexpr int kVersion = 1;

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

double ErrorStatsEntry::GeoMeanQ() const {
  if (count == 0) return 1.0;
  return std::exp(sum_log_q / static_cast<double>(count));
}

ErrorStatsStore::ErrorStatsStore(std::string path, size_t max_entries)
    : path_(std::move(path)), max_entries_(std::max<size_t>(1, max_entries)) {}

void ErrorStatsStore::Record(const std::string& key, double q_error) {
  if (!std::isfinite(q_error) || q_error < 1.0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= max_entries_) {
      ++dropped_keys_;
      return;
    }
    it = entries_.emplace(key, ErrorStatsEntry()).first;
  }
  ErrorStatsEntry& e = it->second;
  ++e.count;
  e.sum_log_q += std::log(q_error);
  e.max_q = std::max(e.max_q, q_error);
}

double ErrorStatsStore::PriorFactor(const std::string& key, double cap) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.count == 0) return 1.0;
  double q = it->second.GeoMeanQ();
  if (!std::isfinite(q)) return 1.0;
  return std::min(std::max(q, 1.0), std::max(cap, 1.0));
}

size_t ErrorStatsStore::NumEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t ErrorStatsStore::DroppedKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_keys_;
}

ErrorStatsEntry ErrorStatsStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  return it != entries_.end() ? it->second : ErrorStatsEntry();
}

std::vector<std::pair<std::string, ErrorStatsEntry>> ErrorStatsStore::Entries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

Status ErrorStatsStore::Load() {
  if (path_.empty()) return Status::OK();
  std::ifstream in(path_);
  if (!in) {
    // Missing file: first run, nothing to learn from yet.
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    return Status::OK();
  }
  // Parse into a scratch map first so a corrupt file never leaves the
  // store half-loaded.
  std::map<std::string, ErrorStatsEntry> parsed;
  auto start_fresh = [&](const std::string& why) {
    DYNOPT_LOG(kWarn) << "error-stats store " << path_ << ": " << why
                      << "; starting fresh (queries are unaffected)";
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    return Status::OK();
  };

  std::string header;
  if (!std::getline(in, header)) return start_fresh("empty file");
  {
    std::istringstream hs(header);
    std::string magic, version_tag;
    size_t n = 0;
    hs >> magic >> version_tag >> n;
    if (magic != kMagic) return start_fresh("bad magic '" + magic + "'");
    if (version_tag != "v" + std::to_string(kVersion)) {
      return start_fresh("unsupported version '" + version_tag + "'");
    }
  }
  std::string line;
  std::string payload;
  bool saw_checksum = false;
  uint64_t recorded_checksum = 0;
  while (std::getline(in, line)) {
    if (line.rfind("checksum ", 0) == 0) {
      saw_checksum = true;
      recorded_checksum = std::strtoull(line.c_str() + 9, nullptr, 16);
      break;
    }
    payload += line;
    payload += '\n';
    // key \t count \t sum_log_q \t max_q
    size_t t1 = line.find('\t');
    size_t t2 = t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
    size_t t3 = t2 == std::string::npos ? t2 : line.find('\t', t2 + 1);
    if (t3 == std::string::npos) {
      return start_fresh("malformed entry line '" + line + "'");
    }
    ErrorStatsEntry e;
    char* end = nullptr;
    e.count = std::strtoull(line.c_str() + t1 + 1, &end, 10);
    e.sum_log_q = std::strtod(line.c_str() + t2 + 1, &end);
    e.max_q = std::strtod(line.c_str() + t3 + 1, &end);
    if (e.count == 0 || !std::isfinite(e.sum_log_q) ||
        !std::isfinite(e.max_q)) {
      return start_fresh("invalid aggregate in line '" + line + "'");
    }
    if (parsed.size() < max_entries_) {
      parsed.emplace(line.substr(0, t1), e);
    }
  }
  if (!saw_checksum) return start_fresh("truncated (no checksum line)");
  const uint64_t actual = HashBytes(payload.data(), payload.size());
  if (actual != recorded_checksum) {
    return start_fresh("checksum mismatch (corrupt or torn write)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(parsed);
  return Status::OK();
}

Status ErrorStatsStore::Save() const {
  if (path_.empty()) return Status::OK();
  std::string payload;
  size_t n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = entries_.size();
    for (const auto& [key, e] : entries_) {
      payload += key;
      payload += '\t';
      payload += std::to_string(e.count);
      payload += '\t';
      payload += FormatDouble(e.sum_log_q);
      payload += '\t';
      payload += FormatDouble(e.max_q);
      payload += '\n';
    }
  }
  // Unique tmp name (pid + process-wide sequence) so writers racing on the
  // same path — other processes or other stores in this one — each write a
  // complete file; rename() is atomic, so the loser's complete file simply
  // replaces the winner's, never a torn mix of both.
  static std::atomic<uint64_t> tmp_seq{0};
  const std::string tmp = path_ + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(tmp_seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::Internal("error-stats store: cannot write " + tmp);
    }
    char checksum[32];
    std::snprintf(checksum, sizeof(checksum), "%016llx",
                  static_cast<unsigned long long>(
                      HashBytes(payload.data(), payload.size())));
    out << kMagic << " v" << kVersion << " " << n << "\n"
        << payload << "checksum " << checksum << "\n";
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("error-stats store: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("error-stats store: rename to " + path_ +
                            " failed");
  }
  return Status::OK();
}

std::string TableErrorKey(const std::string& table,
                          const std::vector<ExprPtr>& predicates) {
  if (predicates.empty()) return "tbl:" + table;
  std::vector<std::string> printed;
  printed.reserve(predicates.size());
  for (const auto& p : predicates) {
    if (p != nullptr) printed.push_back(p->ToString());
  }
  std::sort(printed.begin(), printed.end());
  uint64_t h = 0;
  for (const auto& s : printed) h = HashCombine(h, HashString(s));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return "tbl:" + table + "|p:" + buf;
}

std::string JoinErrorKey(std::vector<std::string> base_tables) {
  std::sort(base_tables.begin(), base_tables.end());
  std::string key = "join:";
  for (size_t i = 0; i < base_tables.size(); ++i) {
    if (i > 0) key += '+';
    key += base_tables[i];
  }
  return key;
}

namespace {

/// What lives in Engine::opt_state(): the store plus the config it was
/// built from, so a knob edit via mutable_cluster() rebuilds it.
struct EngineErrorStatsSlot {
  std::string path;
  size_t max_entries = 0;
  std::shared_ptr<ErrorStatsStore> store;
};

std::mutex g_engine_slot_mu;

}  // namespace

ErrorStatsStore* EngineErrorStats(Engine* engine) {
  if (engine == nullptr) return nullptr;
  const RiskConfig& rc = engine->cluster().risk;
  if (!rc.use_error_store) return nullptr;
  std::lock_guard<std::mutex> lock(g_engine_slot_mu);
  auto slot =
      std::static_pointer_cast<EngineErrorStatsSlot>(engine->opt_state());
  if (slot == nullptr || slot->path != rc.error_stats_path ||
      slot->max_entries != rc.error_store_max_entries) {
    slot = std::make_shared<EngineErrorStatsSlot>();
    slot->path = rc.error_stats_path;
    slot->max_entries = rc.error_store_max_entries;
    slot->store = std::make_shared<ErrorStatsStore>(
        rc.error_stats_path, rc.error_store_max_entries);
    // Fail-soft by contract: a missing/corrupt file logs and starts fresh;
    // an unreadable one still leaves a usable empty store.
    (void)slot->store->Load();
    engine->opt_state() = slot;
  }
  return slot->store.get();
}

SelectivityRisk PriorRisk(const QuerySpec& spec, const ErrorStatsStore* store,
                          double cap) {
  SelectivityRisk risk;
  if (store == nullptr) return risk;
  auto note_prior = [&risk](const std::string& key, double factor) {
    if (factor > risk.prior_factor) {
      risk.prior_factor = factor;
      risk.prior_key = key;
    }
  };
  std::vector<std::string> bases;
  for (const auto& ref : spec.tables) {
    if (ref.is_intermediate) {
      // Exact counts, nothing to widen per alias — but the intermediate
      // still stands in for its base table in the join-level key, so a
      // mid-query (post-pushdown) lookup matches the key a completed run
      // recorded.
      auto it = spec.base_tables.find(ref.alias);
      if (it != spec.base_tables.end()) bases.push_back(it->second);
      continue;
    }
    bases.push_back(ref.table);
    const std::string key =
        TableErrorKey(ref.table, spec.PredicatesFor(ref.alias));
    const double f = store->PriorFactor(key, cap);
    if (f > 1.0) {
      risk.alias_factors[ref.alias] = f;
      note_prior(key, f);
    }
  }
  if (!bases.empty()) {
    const std::string key = JoinErrorKey(bases);
    const double f = store->PriorFactor(key, cap);
    risk.global_factor = std::max(risk.global_factor, f);
    if (f > 1.0) note_prior(key, f);
  }
  return risk;
}

}  // namespace dynopt
