#include "opt/order_baselines.h"

#include <algorithm>
#include <set>

#include "opt/cardinality.h"
#include "opt/explain.h"
#include "opt/static_execution.h"
#include "opt/stats_view.h"

namespace dynopt {

namespace {

/// A join-less query has exactly one order, so both baselines run the bare
/// scan. Keeps single-table queries — notably `SELECT * FROM sys.*`
/// introspection scans — working under every strategy.
Result<OptimizerRunResult> RunSingleTable(Engine* engine,
                                          const QuerySpec& spec,
                                          const std::string& optimizer,
                                          QueryContext* ctx) {
  auto tree = JoinTree::Leaf(spec.tables[0].alias);
  auto profile = std::make_shared<QueryProfile>();
  profile->optimizer = optimizer;
  PlanDecision decision;
  decision.point = "single-table";
  decision.chosen = tree->ToString();
  int decision_id = profile->decisions.Record(std::move(decision));
  return ExecuteTreeAsSingleJob(
      engine, spec, tree, "[" + optimizer + "] plan: " + tree->ToString() + "\n",
      ctx, std::move(profile), decision_id);
}

}  // namespace

WorstOrderOptimizer::WorstOrderOptimizer(Engine* engine,
                                         const PlannerOptions& options)
    : engine_(engine), options_(options) {}

Result<OptimizerRunResult> WorstOrderOptimizer::Run(const QuerySpec& query) {
  QuerySpec spec = query;
  spec.NormalizeJoins();
  DYNOPT_RETURN_IF_ERROR(spec.Validate());
  DYNOPT_RETURN_IF_ERROR(CheckContext());
  if (spec.tables.size() < 2) {
    return RunSingleTable(engine_, spec, name(), ctx_);
  }
  StatsView view(&spec, &engine_->stats(), &engine_->catalog());
  CardinalityEstimator estimator(&view, options_.estimation);

  // Greedy chain: start from the edge with the largest estimated result,
  // then repeatedly attach the neighbor that maximizes the next join's
  // estimated result. All joins are plain (shuffle) hash joins.
  const JoinEdge* seed = nullptr;
  double seed_card = -1.0;
  for (const auto& edge : spec.joins) {
    double card = estimator.EstimateJoinCardinality(edge);
    if (card > seed_card) {
      seed_card = card;
      seed = &edge;
    }
  }
  if (seed == nullptr) {
    return Status::InvalidArgument("no join edges");
  }
  std::set<std::string> in_chain{seed->left_alias, seed->right_alias};
  std::shared_ptr<const JoinTree> tree =
      JoinTree::Join(JoinTree::Leaf(seed->left_alias),
                     JoinTree::Leaf(seed->right_alias),
                     JoinMethod::kHashShuffle);
  double chain_rows = seed_card;

  while (in_chain.size() < spec.tables.size()) {
    const JoinEdge* best_edge = nullptr;
    std::string best_next;
    double best_card = -1.0;
    for (const auto& edge : spec.joins) {
      bool l_in = in_chain.count(edge.left_alias) > 0;
      bool r_in = in_chain.count(edge.right_alias) > 0;
      if (l_in == r_in) continue;  // Internal or disconnected edge.
      const std::string& next = l_in ? edge.right_alias : edge.left_alias;
      double card = l_in ? estimator.EstimateJoinCardinality(
                               edge, chain_rows,
                               estimator.EstimateFilteredSize(next))
                         : estimator.EstimateJoinCardinality(
                               edge, estimator.EstimateFilteredSize(next),
                               chain_rows);
      if (card > best_card) {
        best_card = card;
        best_edge = &edge;
        best_next = next;
      }
    }
    if (best_edge == nullptr) {
      return Status::InvalidArgument("join graph disconnected");
    }
    tree = JoinTree::Join(tree, JoinTree::Leaf(best_next),
                          JoinMethod::kHashShuffle);
    in_chain.insert(best_next);
    chain_rows = best_card;
  }
  std::string trace = "[worst-order] plan: " + tree->ToString() + "\n";
  auto profile = std::make_shared<QueryProfile>();
  profile->optimizer = name();
  PlanDecision decision;
  decision.point = "initial-plan";
  decision.chosen = tree->ToString();
  decision.estimated_rows = chain_rows;  // Greedy chain's final estimate.
  int decision_id = profile->decisions.Record(std::move(decision));
  return ExecuteTreeAsSingleJob(engine_, spec, std::move(tree),
                                std::move(trace), ctx_, std::move(profile),
                                decision_id);
}

BestOrderOptimizer::BestOrderOptimizer(Engine* engine,
                                       std::shared_ptr<const JoinTree> hint)
    : engine_(engine), hint_(std::move(hint)) {}

Result<OptimizerRunResult> BestOrderOptimizer::Run(const QuerySpec& query) {
  QuerySpec spec = query;
  spec.NormalizeJoins();
  DYNOPT_RETURN_IF_ERROR(spec.Validate());
  if (spec.tables.size() < 2) {
    return RunSingleTable(engine_, spec, name(), ctx_);
  }
  if (hint_ == nullptr) {
    return Status::InvalidArgument(
        "best-order requires a join-tree hint (run the dynamic optimizer "
        "first and pass its join_tree)");
  }
  // Sanity: the hint must cover exactly the query's aliases.
  std::set<std::string> hint_aliases = hint_->Aliases();
  std::set<std::string> query_aliases;
  for (const auto& ref : spec.tables) query_aliases.insert(ref.alias);
  if (hint_aliases != query_aliases) {
    return Status::InvalidArgument(
        "best-order hint aliases do not match the query");
  }
  std::string trace = "[best-order] plan: " + hint_->ToString() + "\n";
  auto profile = std::make_shared<QueryProfile>();
  profile->optimizer = name();
  PlanDecision decision;
  decision.point = "hinted-plan";
  decision.chosen = hint_->ToString();
  DYNOPT_ASSIGN_OR_RETURN(decision.estimated_rows,
                          EstimateTreeCardinality(engine_, spec, *hint_));
  int decision_id = profile->decisions.Record(std::move(decision));
  return ExecuteTreeAsSingleJob(engine_, spec, hint_, std::move(trace), ctx_,
                                std::move(profile), decision_id);
}

}  // namespace dynopt
