#include "opt/planner.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "opt/cost_model.h"

namespace dynopt {

std::string PlannedJoin::ToString() const {
  std::ostringstream os;
  os << edge.ToString() << " [" << JoinMethodName(method)
     << ", build=" << build_alias << ", est_rows=" << estimated_cardinality
     << "]";
  return os.str();
}

Planner::Planner(const StatsView* view, const ClusterConfig& cluster,
                 const PlannerOptions& options, const SelectivityRisk* risk,
                 const SketchManager* sketches)
    : view_(view),
      cluster_(cluster),
      options_(options),
      risk_(risk),
      estimator_(view, options.estimation) {
  if (sketches != nullptr) estimator_.SetSketches(sketches);
}

double Planner::EstimateEdgeCardinality(const JoinEdge& edge,
                                        double left_override,
                                        double right_override,
                                        std::string* provenance) const {
  if (estimator_.has_sketches()) {
    double card =
        estimator_.SketchJoinCardinality(edge, left_override, right_override);
    if (card >= 0) {
      if (provenance != nullptr) *provenance = "sketch";
      return card;
    }
    if (provenance != nullptr) *provenance = "stats";
  } else if (provenance != nullptr) {
    provenance->clear();
  }
  return estimator_.EstimateJoinCardinality(edge, left_override,
                                            right_override);
}

bool Planner::InljApplicable(const JoinEdge& edge,
                             const std::string& outer_alias,
                             const std::string& inner_alias) const {
  if (!options_.enable_inlj) return false;
  if (edge.keys.size() != 1) return false;
  const QuerySpec& spec = view_->spec();
  const TableRef* inner = spec.FindRef(inner_alias);
  if (inner == nullptr || inner->is_intermediate) return false;
  // An index lookup replaces the inner pipeline; local predicates on the
  // inner would be lost, so a filtered inner disqualifies INLJ.
  if (inner->filtered || !spec.PredicatesFor(inner_alias).empty()) {
    return false;
  }
  // The broadcast side must be filtered (paper Section 6.1.2), otherwise a
  // plain broadcast that scans the inner once is preferred.
  if (!outer_alias.empty()) {
    const TableRef* outer = spec.FindRef(outer_alias);
    if (outer == nullptr || !(outer->filtered || outer->is_intermediate)) {
      return false;
    }
  }
  // The inner must have a secondary index on (the unqualified form of) its
  // join key column.
  std::string key = edge.KeysOf(inner_alias)[0];
  const std::string prefix = inner_alias + ".";
  if (key.rfind(prefix, 0) == 0) key = key.substr(prefix.size());
  if (view_->catalog() == nullptr) return false;
  auto table = view_->catalog()->GetTable(inner->table);
  if (!table.ok()) return false;
  return table.value()->HasSecondaryIndex(key);
}

PlannedJoin Planner::DecorateWithMethod(const JoinEdge& edge, double card,
                                        double left_rows, double left_bytes,
                                        double right_rows,
                                        double right_bytes) const {
  PlannedJoin planned;
  planned.edge = edge;
  planned.estimated_cardinality = card;
  const double left_width = left_rows > 0 ? left_bytes / left_rows : 64.0;
  const double right_width = right_rows > 0 ? right_bytes / right_rows : 64.0;
  planned.estimated_bytes = card * (left_width + right_width);

  // Pessimistic-bound sizes: risk widens the inputs (per-alias) and the
  // output (the worst of input factors and the global factor — a join can
  // not be more trustworthy than its least-trusted input). The *expected*
  // estimates above are what the decision log reports; the pessimistic ones
  // drive every choice below (build side, broadcast eligibility, costs).
  // With no risk all factors are 1 and nothing changes.
  const double lf = RiskFactor(edge.left_alias);
  const double rf = RiskFactor(edge.right_alias);
  const double of = std::max(std::max(lf, rf),
                             risk_ == nullptr ? 1.0 : risk_->global_factor);
  const double p_left_rows = left_rows * lf;
  const double p_left_bytes = left_bytes * lf;
  const double p_right_rows = right_rows * rf;
  const double p_right_bytes = right_bytes * rf;
  const double p_card = card * of;

  const bool left_small = p_left_bytes <= p_right_bytes;
  const std::string& small_alias =
      left_small ? edge.left_alias : edge.right_alias;
  const std::string& large_alias =
      left_small ? edge.right_alias : edge.left_alias;
  const double small_rows = left_small ? p_left_rows : p_right_rows;
  const double small_bytes = left_small ? p_left_bytes : p_right_bytes;
  const double large_rows = left_small ? p_right_rows : p_left_rows;
  const double large_bytes = left_small ? p_right_bytes : p_left_bytes;

  JoinCostInputs in;
  in.build_rows = small_rows;
  in.build_bytes = small_bytes;
  in.probe_rows = large_rows;
  in.probe_bytes = large_bytes;
  in.out_rows = p_card;
  in.out_bytes = p_card * (left_width + right_width);
  if (cluster_.risk.spill_aware_costing) {
    in.memory_budget_bytes = cluster_.memory.join_memory_budget_bytes;
  }

  // Hash join is the default (Section 3); the build side is the smaller
  // input either way. Every costed-but-not-chosen method lands in
  // `rejected` so the decision log can show the full algorithm choice.
  auto method_alternative = [&](JoinMethod method, double cost) {
    PlanAlternative alt;
    alt.description = std::string("method: ") + JoinMethodName(method) +
                      " (build=" + small_alias + ")";
    alt.cost = cost;
    return alt;
  };
  planned.method = JoinMethod::kHashShuffle;
  planned.build_alias = small_alias;
  double best_cost =
      EstimateJoinExecCost(JoinMethod::kHashShuffle, in, cluster_, 0.0);
  DYNOPT_LOG(kDebug) << "decorate " << edge.ToString() << " card=" << card
                     << " l=(" << left_rows << "," << left_bytes << ") r=("
                     << right_rows << "," << right_bytes
                     << ") hash=" << best_cost;

  if (options_.enable_broadcast &&
      small_bytes <= static_cast<double>(cluster_.broadcast_threshold_bytes)) {
    double cost =
        EstimateJoinExecCost(JoinMethod::kBroadcast, in, cluster_, 0.0);
    if (cost < best_cost) {
      planned.rejected.push_back(
          method_alternative(planned.method, best_cost));
      best_cost = cost;
      planned.method = JoinMethod::kBroadcast;
      planned.build_alias = small_alias;
    } else {
      planned.rejected.push_back(
          method_alternative(JoinMethod::kBroadcast, cost));
    }
    if (InljApplicable(edge, small_alias, large_alias)) {
      // Probing the index skips the inner scan; credit that saving.
      double cost_inlj = EstimateJoinExecCost(JoinMethod::kIndexNestedLoop,
                                              in, cluster_, large_bytes);
      if (cost_inlj < best_cost) {
        planned.rejected.push_back(
            method_alternative(planned.method, best_cost));
        best_cost = cost_inlj;
        planned.method = JoinMethod::kIndexNestedLoop;
        planned.build_alias = small_alias;
      } else {
        planned.rejected.push_back(
            method_alternative(JoinMethod::kIndexNestedLoop, cost_inlj));
      }
    }
  }
  planned.estimated_cost = best_cost;
  return planned;
}

Result<PlannedJoin> Planner::PickNextJoin() const {
  const QuerySpec& spec = view_->spec();
  if (spec.joins.empty()) {
    return Status::InvalidArgument("no joins left to plan");
  }
  // Estimate all edges first, then decorate the winner; losing edges are
  // recorded as join-order alternatives (cost = estimated result rows).
  std::vector<double> cards;
  std::vector<std::string> provenances(spec.joins.size());
  cards.reserve(spec.joins.size());
  size_t best_index = 0;
  double best_pessimistic = 0;
  for (size_t i = 0; i < spec.joins.size(); ++i) {
    const JoinEdge& e = spec.joins[i];
    cards.push_back(EstimateEdgeCardinality(e, -1.0, -1.0, &provenances[i]));
    // Rank edges by the pessimistic bound: an edge whose inputs have a
    // history of misestimation must look worse than its expected rows.
    // (The shared global factor cancels out of the ranking, so only the
    // per-alias factors matter here.)
    const double pessimistic =
        cards[i] *
        std::max(RiskFactor(e.left_alias), RiskFactor(e.right_alias));
    if (i == 0 || pessimistic < best_pessimistic) {
      best_index = i;
      best_pessimistic = pessimistic;
    }
  }
  const JoinEdge& edge = spec.joins[best_index];
  PlannedJoin best = DecorateWithMethod(
      edge, cards[best_index], estimator_.EstimateFilteredSize(edge.left_alias),
      estimator_.EstimateFilteredBytes(edge.left_alias),
      estimator_.EstimateFilteredSize(edge.right_alias),
      estimator_.EstimateFilteredBytes(edge.right_alias));
  best.provenance = provenances[best_index];
  for (size_t i = 0; i < spec.joins.size(); ++i) {
    if (i == best_index) continue;
    PlanAlternative alt;
    alt.description = "join-order: " + spec.joins[i].ToString();
    alt.cost = cards[i];
    best.rejected.push_back(std::move(alt));
  }
  return best;
}

Result<std::shared_ptr<const JoinTree>> Planner::PlanRemaining(
    std::vector<PlannedJoin>* steps) const {
  const QuerySpec& spec = view_->spec();
  if (spec.joins.size() > 2) {
    return Status::InvalidArgument(
        "PlanRemaining expects at most two remaining joins");
  }
  if (spec.joins.empty()) {
    if (spec.tables.size() != 1) {
      return Status::InvalidArgument("join-less query with multiple tables");
    }
    return JoinTree::Leaf(spec.tables[0].alias);
  }

  DYNOPT_ASSIGN_OR_RETURN(PlannedJoin first, PickNextJoin());
  const std::string& build = first.build_alias;
  const std::string& probe = first.edge.Other(build);
  auto inner_tree = JoinTree::Join(JoinTree::Leaf(build),
                                   JoinTree::Leaf(probe), first.method);

  if (spec.joins.size() == 1) {
    if (steps != nullptr) steps->push_back(std::move(first));
    return inner_tree;
  }

  // Two joins / three datasets: attach the remaining dataset on top,
  // ordered by result cardinality (the smaller join goes innermost, which
  // PickNextJoin already guarantees).
  const JoinEdge* outer_edge = nullptr;
  for (const auto& edge : spec.joins) {
    if (edge.left_alias == first.edge.left_alias &&
        edge.right_alias == first.edge.right_alias) {
      continue;
    }
    outer_edge = &edge;
    break;
  }
  if (outer_edge == nullptr) {
    return Status::Internal("could not locate the second remaining join");
  }
  // Which side of the outer edge is the third dataset?
  const std::string& third = first.edge.Involves(outer_edge->left_alias)
                                 ? outer_edge->right_alias
                                 : outer_edge->left_alias;
  const std::string& inner_side = outer_edge->Other(third);

  // Size estimates: the joined pair behaves as `first`'s output.
  double third_rows = estimator_.EstimateFilteredSize(third);
  double third_bytes = estimator_.EstimateFilteredBytes(third);
  double pair_rows = first.estimated_cardinality;
  double pair_bytes = first.estimated_bytes;
  double card;
  std::string outer_provenance;
  if (outer_edge->left_alias == inner_side) {
    card = EstimateEdgeCardinality(*outer_edge, pair_rows, third_rows,
                                   &outer_provenance);
  } else {
    card = EstimateEdgeCardinality(*outer_edge, third_rows, pair_rows,
                                   &outer_provenance);
  }
  PlannedJoin outer;
  if (outer_edge->left_alias == inner_side) {
    outer = DecorateWithMethod(*outer_edge, card, pair_rows, pair_bytes,
                               third_rows, third_bytes);
  } else {
    outer = DecorateWithMethod(*outer_edge, card, third_rows, third_bytes,
                               pair_rows, pair_bytes);
  }
  outer.provenance = std::move(outer_provenance);

  // Build side of the outer join: the smaller input (per DecorateWithMethod
  // `build_alias`); when the pair side is the build, the subtree goes left.
  std::shared_ptr<const JoinTree> third_leaf = JoinTree::Leaf(third);
  bool pair_is_build = outer.build_alias == inner_side;
  if (outer.method == JoinMethod::kIndexNestedLoop) {
    // The indexed inner must be the leaf (base dataset); the subtree is
    // necessarily the broadcast outer.
    if (outer.build_alias != inner_side) {
      // The planner chose to broadcast the third dataset into an index on
      // the pair — impossible since the pair is an intermediate; fall back
      // to broadcast.
      outer.method = JoinMethod::kBroadcast;
      pair_is_build = false;
    } else {
      pair_is_build = true;
    }
  }
  std::shared_ptr<const JoinTree> full =
      pair_is_build ? JoinTree::Join(inner_tree, third_leaf, outer.method)
                    : JoinTree::Join(third_leaf, inner_tree, outer.method);
  if (steps != nullptr) {
    steps->push_back(std::move(first));
    steps->push_back(std::move(outer));
  }
  return full;
}

}  // namespace dynopt
