#include "opt/ingres_optimizer.h"

namespace dynopt {

namespace {

DynamicOptimizerOptions MakeIngresOptions(const PlannerOptions& base) {
  DynamicOptimizerOptions options;
  options.planner = base;
  options.planner.estimation.cardinality_only = true;
  // INGRES decomposes every single-variable query, simple or not.
  options.pushdown_predicates = true;
  options.pushdown_simple_predicates = true;
  // Only exact cardinalities of intermediates are fed back; no sketches.
  options.collect_online_stats = false;
  options.profile_label = "ingres-like";
  return options;
}

}  // namespace

IngresLikeOptimizer::IngresLikeOptimizer(Engine* engine,
                                         const PlannerOptions& options)
    : inner_(engine, MakeIngresOptions(options)) {}

Result<OptimizerRunResult> IngresLikeOptimizer::Run(const QuerySpec& query) {
  return inner_.Run(query);
}

}  // namespace dynopt
