#include "opt/join_tree.h"

namespace dynopt {

std::shared_ptr<const JoinTree> JoinTree::Leaf(std::string alias) {
  auto node = std::make_shared<JoinTree>();
  node->alias = std::move(alias);
  return node;
}

std::shared_ptr<const JoinTree> JoinTree::Join(
    std::shared_ptr<const JoinTree> l, std::shared_ptr<const JoinTree> r,
    JoinMethod method) {
  auto node = std::make_shared<JoinTree>();
  node->left = std::move(l);
  node->right = std::move(r);
  node->method = method;
  return node;
}

void JoinTree::CollectAliases(std::set<std::string>* out) const {
  if (IsLeaf()) {
    out->insert(alias);
    return;
  }
  left->CollectAliases(out);
  right->CollectAliases(out);
}

std::set<std::string> JoinTree::Aliases() const {
  std::set<std::string> out;
  CollectAliases(&out);
  return out;
}

std::string JoinTree::ToString() const {
  if (IsLeaf()) return alias;
  const char* mark = "";
  switch (method) {
    case JoinMethod::kHashShuffle:
      mark = "";
      break;
    case JoinMethod::kBroadcast:
      mark = "b";
      break;
    case JoinMethod::kIndexNestedLoop:
      mark = "i";
      break;
  }
  return "(" + left->ToString() + " JOIN" + mark + " " + right->ToString() +
         ")";
}

}  // namespace dynopt
