#include "opt/cardinality.h"

#include <algorithm>
#include <cmath>

#include "plan/analysis.h"

namespace dynopt {

double CardinalityEstimator::ConjunctSelectivity(
    const std::string& alias, const ExprPtr& conjunct) const {
  PredicateShape shape = AnalyzePredicates({conjunct});
  auto simple = ExtractSimpleCondition(conjunct);
  if (!simple.has_value() || shape.has_udf || shape.has_param ||
      options_.cardinality_only) {
    // Complex predicate: the optimizer is blind; use Selinger defaults.
    // BETWEEN and inequality comparisons default to 1/3, equality to 1/10.
    if (conjunct->kind() == ExprKind::kBetween) {
      return options_.default_range_selectivity;
    }
    if (conjunct->kind() == ExprKind::kComparison) {
      CompareOp op = static_cast<const ComparisonExpr&>(*conjunct).op();
      return op == CompareOp::kEq ? options_.default_eq_selectivity
                                  : options_.default_range_selectivity;
    }
    return options_.default_eq_selectivity;
  }
  const ColumnStatsSnapshot* col = view_->Column(alias, simple->column);
  if (col == nullptr || !options_.use_histograms) {
    if (simple->is_between) return options_.default_range_selectivity;
    return simple->op == CompareOp::kEq ? options_.default_eq_selectivity
                                        : options_.default_range_selectivity;
  }
  if (simple->is_between) {
    return col->EstimateRangeSelectivity(simple->lo, simple->hi);
  }
  switch (simple->op) {
    case CompareOp::kEq:
      return col->EstimateEqSelectivity(simple->value);
    case CompareOp::kNe:
      return 1.0 - col->EstimateEqSelectivity(simple->value);
    case CompareOp::kLt:
    case CompareOp::kLe:
      return col->EstimateRangeSelectivity(Value::Null(), simple->value);
    case CompareOp::kGt:
    case CompareOp::kGe:
      return col->EstimateRangeSelectivity(simple->value, Value::Null());
  }
  return options_.default_range_selectivity;
}

double CardinalityEstimator::EstimatePredicateSelectivity(
    const std::string& alias) const {
  double selectivity = 1.0;
  for (const auto& pred : view_->spec().PredicatesFor(alias)) {
    for (const auto& conjunct : SplitConjuncts(pred)) {
      selectivity *= ConjunctSelectivity(alias, conjunct);
    }
  }
  return std::clamp(selectivity, 0.0, 1.0);
}

double CardinalityEstimator::EstimateFilteredSize(
    const std::string& alias) const {
  return view_->RowCount(alias) * EstimatePredicateSelectivity(alias);
}

double CardinalityEstimator::EstimateFilteredBytes(
    const std::string& alias) const {
  return view_->TotalBytes(alias) * EstimatePredicateSelectivity(alias);
}

double CardinalityEstimator::EstimateKeyNdv(const JoinEdge& edge,
                                            const std::string& alias,
                                            double size_cap) const {
  double ndv = 1.0;
  for (const auto& key : edge.KeysOf(alias)) {
    const ColumnStatsSnapshot* col = view_->Column(alias, key);
    double key_ndv = col != nullptr && col->ndv > 0 ? col->ndv : size_cap;
    ndv *= std::max(1.0, key_ndv);
  }
  return std::clamp(ndv, 1.0, std::max(1.0, size_cap));
}

std::shared_ptr<const JoinKeySketch> CardinalityEstimator::SketchFor(
    const std::string& alias, const std::string& key) const {
  if (sketches_ == nullptr) return nullptr;
  const TableRef* ref = view_->spec().FindRef(alias);
  if (ref == nullptr) return nullptr;
  if (ref->is_intermediate) {
    // Intermediates register sketches under the qualified names their
    // columns keep; no base-table fallback — a base sketch would describe
    // the dataset *before* the predicates this intermediate already
    // executed.
    return sketches_->Get(ref->table, key);
  }
  const std::string prefix = alias + ".";
  return sketches_->Get(ref->table, key.rfind(prefix, 0) == 0
                                        ? key.substr(prefix.size())
                                        : key);
}

double CardinalityEstimator::SketchJoinCardinality(
    const JoinEdge& edge, double left_size_override,
    double right_size_override) const {
  if (sketches_ == nullptr || edge.keys.size() != 1) return -1.0;
  auto left = SketchFor(edge.left_alias, edge.keys[0].first);
  auto right = SketchFor(edge.right_alias, edge.keys[0].second);
  if (left == nullptr || right == nullptr) return -1.0;
  const double dot = left->agms.JoinSizeEstimate(right->agms);
  if (dot < 0) return -1.0;  // Shape/seed mismatch: not comparable.
  // The sketches describe the full datasets they were built over; a side
  // restricted below that (local predicates not yet executed, or a caller
  // override from DP enumeration) shrinks the estimate proportionally —
  // the same containment assumption formula (1) makes.
  auto restriction = [this](const std::string& alias, double size_override,
                            uint64_t sketched_rows) {
    const double size = size_override >= 0
                            ? size_override
                            : EstimateFilteredSize(alias);
    if (sketched_rows == 0) return 1.0;
    return std::clamp(size / static_cast<double>(sketched_rows), 0.0, 1.0);
  };
  return dot *
         restriction(edge.left_alias, left_size_override, left->rows) *
         restriction(edge.right_alias, right_size_override, right->rows);
}

double CardinalityEstimator::EstimateJoinCardinality(
    const JoinEdge& edge, double left_size_override,
    double right_size_override) const {
  double left_size = left_size_override >= 0
                         ? left_size_override
                         : EstimateFilteredSize(edge.left_alias);
  double right_size = right_size_override >= 0
                          ? right_size_override
                          : EstimateFilteredSize(edge.right_alias);
  if (options_.cardinality_only) {
    // INGRES persona: no distinct-count information; a crude proxy that
    // only reflects input sizes.
    return std::max(left_size, right_size);
  }
  // Formula (1) per key column: divide by max(U_left, U_right). For
  // composite keys we take the largest per-column divisor rather than the
  // product — multiplying independent per-column NDVs wildly exceeds the
  // number of key combinations that actually exist (e.g. partsupp's
  // (partkey, suppkey) domain is 4 x part, not part x supplier) and makes
  // fact-to-fact joins look spuriously cheap.
  // When a side was filtered, its key ndv shrinks proportionally (standard
  // containment assumption): scale the base ndv by the filtered fraction.
  double left_base = view_->RowCount(edge.left_alias);
  double right_base = view_->RowCount(edge.right_alias);
  double left_scale = (left_base > 0 && left_size < left_base)
                          ? left_size / left_base
                          : 1.0;
  double right_scale = (right_base > 0 && right_size < right_base)
                           ? right_size / right_base
                           : 1.0;
  double denom = 1.0;
  for (const auto& [left_key, right_key] : edge.keys) {
    const ColumnStatsSnapshot* lc = view_->Column(edge.left_alias, left_key);
    const ColumnStatsSnapshot* rc = view_->Column(edge.right_alias, right_key);
    double u_l = (lc != nullptr && lc->ndv > 0) ? lc->ndv : left_size;
    double u_r = (rc != nullptr && rc->ndv > 0) ? rc->ndv : right_size;
    u_l = std::max(1.0, u_l * left_scale);
    u_r = std::max(1.0, u_r * right_scale);
    denom = std::max(denom, std::max(u_l, u_r));
  }
  return left_size * right_size / denom;
}

}  // namespace dynopt
