#ifndef DYNOPT_OPT_CRITICAL_PATH_H_
#define DYNOPT_OPT_CRITICAL_PATH_H_

#include <string>
#include <vector>

#include "common/tracer.h"

namespace dynopt {

/// Extracts the dominant simulated-time chain from a drained span timeline:
/// rebuilds the span forest (per-thread, by depth and interval containment),
/// weights each node by its "sim_seconds" arg — falling back to the sum of
/// its children for spans that carry no metering of their own, like the
/// pushdown/reopt stage spans — and walks from the heaviest root down the
/// heaviest child at every level.
///
/// Returns e.g. "query:dynamic (1.84s) -> reopt-1 (1.10s) -> job (1.10s)",
/// or "" when `events` is empty or no span carries simulated time (tracing
/// off, or a zero-cost query). Kernel spans carry no sim_seconds, so the
/// chain naturally ends at job granularity.
std::string CriticalPath(const std::vector<TraceEvent>& events);

}  // namespace dynopt

#endif  // DYNOPT_OPT_CRITICAL_PATH_H_
