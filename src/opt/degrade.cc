#include "opt/degrade.h"

#include <algorithm>

#include "common/metrics_registry.h"
#include "opt/cost_model.h"
#include "opt/static_optimizer.h"
#include "opt/stats_view.h"

namespace dynopt {

uint64_t EstimateQueryReservationBytes(const QuerySpec& query, Engine* engine,
                                       uint64_t min_bytes,
                                       const EstimationOptions& options) {
  StatsView view(&query, &engine->stats(), &engine->catalog());
  CardinalityEstimator estimator(&view, options);
  double bytes = 0;
  for (const auto& ref : query.tables) {
    // Route per-input sizes through the spill-aware resident-set model:
    // with a per-node join budget, a build side larger than budget x nodes
    // never pins more than that — the overflow lives in spill files the
    // admission controller should not reserve RAM for. With no budget
    // (default) this is the identity, so reservations are unchanged.
    bytes += EstimateResidentBytes(
        std::max(0.0, estimator.EstimateFilteredBytes(ref.alias)),
        engine->cluster());
  }
  return std::max(min_bytes, static_cast<uint64_t>(bytes));
}

std::unique_ptr<Optimizer> ApplyStrategyDowngrade(
    std::unique_ptr<Optimizer> planned, Engine* engine, QueryContext* ctx) {
  if (planned == nullptr || ctx == nullptr || !ctx->strategy_downgraded) {
    return planned;
  }
  MetricsRegistry& registry = engine != nullptr
                                  ? engine->metrics_registry()
                                  : MetricsRegistry::Global();
  registry.counter("opt.strategy_downgrades")->Increment();
  auto fallback = std::make_unique<StaticCostBasedOptimizer>(engine);
  fallback->set_context(ctx);
  return fallback;
}

}  // namespace dynopt
