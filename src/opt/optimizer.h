#ifndef DYNOPT_OPT_OPTIMIZER_H_
#define DYNOPT_OPT_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/metrics.h"
#include "opt/decision_log.h"
#include "opt/join_tree.h"
#include "plan/query_spec.h"

namespace dynopt {

/// Result of optimizing + executing one query end to end.
struct OptimizerRunResult {
  std::vector<std::string> columns;  ///< Qualified projection names.
  std::vector<Row> rows;             ///< Gathered final result.
  ExecMetrics metrics;               ///< Totals incl. simulated seconds.
  double wall_seconds = 0;           ///< Real elapsed time.
  /// Effective join order/methods (the paper's plan figures); null for
  /// single-table queries.
  std::shared_ptr<const JoinTree> join_tree;
  /// Human-readable stage-by-stage narrative.
  std::string plan_trace;
  /// Full observability record: decision log with estimated-vs-actual
  /// cardinalities, per-subtree actual rows, and (when tracing is enabled)
  /// the drained span timeline. Always non-null after a successful Run();
  /// rendered by ExplainAnalyze() and exportable via WriteChromeTrace().
  std::shared_ptr<QueryProfile> profile;
};

/// Common interface of the six optimization strategies compared in the
/// paper's evaluation. Run() owns the full lifecycle: plan (possibly
/// interleaved with execution for the dynamic strategies), execute, clean
/// up temp datasets, and report metrics.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;
  virtual Result<OptimizerRunResult> Run(const QuerySpec& query) = 0;

  /// True when this optimizer can continue a failed run from mid-query
  /// state instead of restarting. Only the checkpointing strategies
  /// (dynamic, and ingres-like which wraps it) return true: their
  /// materialized intermediates double as checkpoints. The static
  /// strategies execute one monolithic job and have nothing to resume
  /// from — RunWithRecovery (opt/recovery.h) degrades them to whole-query
  /// restart.
  virtual bool CanResume() const { return false; }

  /// Continues the most recent failed Run() from its last checkpoint.
  /// Precondition: CanResume() and the last Run/Resume failed with a
  /// retryable error that left a checkpoint behind.
  virtual Result<OptimizerRunResult> ResumeFromLastCheckpoint() {
    return Status::Unimplemented(name() + " cannot resume from a checkpoint");
  }

  /// Attaches a per-query context: every driver loop checks its
  /// cancellation token/deadline at stage and re-optimization boundaries,
  /// and executors account memory against its tracker. Null (the default)
  /// runs ungoverned. The context must outlive Run()/Resume(). Wrapping
  /// strategies (ingres-like) forward this to their inner optimizer.
  virtual void set_context(QueryContext* ctx) { ctx_ = ctx; }
  QueryContext* context() const { return ctx_; }

 protected:
  /// Cooperative cancellation check for driver loops; OK without a context.
  Status CheckContext() {
    return ctx_ != nullptr ? ctx_->CheckAlive() : Status::OK();
  }

  /// Catalog temp-name prefix for this query's materialized intermediates:
  /// "q<id>_<kind>" with a context attached, so concurrent queries' temp
  /// tables are distinguishable and a terminal-failure sweep
  /// (RunWithRecovery) reclaims only THIS query's leftovers instead of
  /// destroying other in-flight queries' intermediates. Plain `kind`
  /// ungoverned — single-query runs keep their legacy names.
  std::string TempPrefix(const char* kind) const {
    return ctx_ != nullptr
               ? "q" + std::to_string(ctx_->id()) + "_" + kind
               : std::string(kind);
  }

  QueryContext* ctx_ = nullptr;
};

/// Sorts rows lexicographically — canonical form for comparing result sets
/// across optimizers in tests.
void SortRows(std::vector<Row>* rows);

}  // namespace dynopt

#endif  // DYNOPT_OPT_OPTIMIZER_H_
