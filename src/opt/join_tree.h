#ifndef DYNOPT_OPT_JOIN_TREE_H_
#define DYNOPT_OPT_JOIN_TREE_H_

#include <memory>
#include <set>
#include <string>

#include "exec/job.h"

namespace dynopt {

/// Logical join-order tree over query aliases (leaves) with a physical
/// method per internal node — the shape the paper draws in its plan
/// figures, and the "hint" a user would encode in the FROM clause for the
/// best-order baseline. Value-semantics via shared_ptr so optimizers can
/// record and replay trees cheaply.
struct JoinTree {
  std::string alias;  ///< Leaf only.
  std::shared_ptr<const JoinTree> left;
  std::shared_ptr<const JoinTree> right;
  JoinMethod method = JoinMethod::kHashShuffle;

  bool IsLeaf() const { return left == nullptr; }

  static std::shared_ptr<const JoinTree> Leaf(std::string alias);
  static std::shared_ptr<const JoinTree> Join(
      std::shared_ptr<const JoinTree> l, std::shared_ptr<const JoinTree> r,
      JoinMethod method);

  void CollectAliases(std::set<std::string>* out) const;
  std::set<std::string> Aliases() const;

  /// Renders like the paper's plan notation: ((A ⋈b B) ⋈ C); 'b' marks
  /// broadcast and 'i' indexed nested loop.
  std::string ToString() const;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_JOIN_TREE_H_
