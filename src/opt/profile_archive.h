#ifndef DYNOPT_OPT_PROFILE_ARCHIVE_H_
#define DYNOPT_OPT_PROFILE_ARCHIVE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/cluster.h"
#include "opt/decision_log.h"
#include "opt/optimizer.h"
#include "plan/query_spec.h"

namespace dynopt {

class Engine;
class QueryContext;

/// Canonical fingerprint of a query's *logical* shape: base tables and
/// aliases, join edges, local predicates, projections, post-processing and
/// parameter *names* (not values — the same prepared query with different
/// bindings fingerprints identically). Deliberately excludes everything
/// physical (join order, methods, strategy), so two runs of one query that
/// planned differently share a fingerprint — which is exactly what lets the
/// plan-regression detector line them up. Returns a 16-hex-digit FNV hash.
std::string QueryFingerprint(const QuerySpec& spec);

/// A query currently executing, as registered by IntrospectionRun's
/// constructor and surfaced in sys.queries with status "running".
struct ActiveQueryInfo {
  uint64_t query_id = 0;
  std::string label;
  std::string optimizer;
  std::string fingerprint;
  std::string priority;  // "low" | "normal" | "high"
};

/// One completed query in the profile archive: identity, resource summary,
/// critical path, and the regression verdict computed against the best
/// prior same-fingerprint entry at archive time.
struct ArchivedQuery {
  uint64_t query_id = 0;
  std::string label;
  std::string optimizer;
  std::string fingerprint;
  std::string priority;
  double queue_wait_seconds = 0;
  uint64_t peak_memory_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t retries = 0;
  double sim_seconds = 0;
  double wall_seconds = 0;
  std::string critical_path;

  /// Regression verdict (set by ProfileArchive::Archive): `regressed` when
  /// sim_seconds exceeded threshold x the best archived same-fingerprint
  /// run. `regression` is the human-readable note; the divergence fields
  /// name the first decision where this run's log departs from the
  /// baseline's, and the error-store prior (if any) that drove it.
  bool regressed = false;
  std::string regression;
  int first_divergent_index = -1;
  std::string first_divergent_decision;
  std::string divergent_prior_key;
  double divergent_prior_factor = 1.0;

  /// Full profile (decision log feeds sys.decisions). May be null for
  /// entries archived without a profile.
  std::shared_ptr<const QueryProfile> profile;
};

/// Bounded ring of completed QueryProfiles plus a registry of in-flight
/// queries — the introspection plane's memory. Archive() runs the
/// plan-regression analysis inline (against entries already in the ring)
/// so every archived entry carries its verdict. Thread-safe; sized by
/// IntrospectionConfig::archive_capacity (oldest evicted first).
class ProfileArchive {
 public:
  explicit ProfileArchive(IntrospectionConfig config)
      : config_(config) {}

  /// Registers an in-flight query; pair with UnregisterActive.
  void RegisterActive(ActiveQueryInfo info);
  void UnregisterActive(uint64_t query_id);

  /// Analyzes `entry` against the best (lowest sim_seconds) archived entry
  /// with the same fingerprint, fills the regression fields, appends it to
  /// the ring (evicting beyond capacity) and returns the analyzed copy.
  ArchivedQuery Archive(ArchivedQuery entry);

  std::vector<ArchivedQuery> Snapshot() const;
  std::vector<ActiveQueryInfo> ActiveSnapshot() const;
  size_t NumArchived() const;
  /// Rough retained-bytes estimate (strings + trace events + decisions),
  /// demonstrating the ring bound in bench_introspect.
  size_t ApproxBytes() const;

  const IntrospectionConfig& config() const { return config_; }

 private:
  const IntrospectionConfig config_;
  mutable std::mutex mu_;
  std::deque<ArchivedQuery> ring_;
  std::map<uint64_t, ActiveQueryInfo> active_;
};

/// The engine-scoped archive, (re)built lazily from
/// engine->cluster().introspection and stored in the engine's type-erased
/// introspection_state() slot (the exec layer cannot name opt types) —
/// same pattern as EngineErrorStats. Returns nullptr when
/// introspection.enabled is off (the default). Thread-safe.
ProfileArchive* EngineProfileArchive(Engine* engine);

/// RAII scope an optimizer run wraps itself in: the constructor fingerprints
/// the (pre-pushdown) spec and registers the query as active; Complete()
/// extracts the critical path from the drained trace, archives the profile
/// with the regression analysis, and copies fingerprint / critical_path /
/// regression_note onto result->profile for EXPLAIN ANALYZE. Every method
/// is a no-op when introspection is disabled, so default runs do zero extra
/// work. The destructor unregisters the query even on error paths.
class IntrospectionRun {
 public:
  IntrospectionRun(Engine* engine, const QuerySpec& spec,
                   std::string optimizer, QueryContext* ctx);
  ~IntrospectionRun();

  IntrospectionRun(const IntrospectionRun&) = delete;
  IntrospectionRun& operator=(const IntrospectionRun&) = delete;

  /// Archives the finished run. Call once, after FinalizeProfile (the
  /// trace must already be drained into result->profile->trace).
  void Complete(OptimizerRunResult* result);

 private:
  ProfileArchive* archive_ = nullptr;  // null = introspection off
  uint64_t query_id_ = 0;
  std::string label_;
  std::string optimizer_;
  std::string fingerprint_;
  std::string priority_;
  double queue_wait_seconds_ = 0;
  bool completed_ = false;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_PROFILE_ARCHIVE_H_
