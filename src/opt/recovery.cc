#include "opt/recovery.h"

#include <string>
#include <vector>

#include "storage/serde.h"

namespace dynopt {

Result<OptimizerRunResult> RunWithRecovery(Optimizer* optimizer,
                                           Engine* engine,
                                           const QuerySpec& query,
                                           const RecoveryPolicy& policy,
                                           RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport* r = report != nullptr ? report : &local;
  *r = RecoveryReport();

  FaultInjector* injector = engine->fault_injector();
  // aborted_work_seconds is cumulative over the injector's lifetime;
  // deltas attribute waste to this query's failed attempts only.
  double aborted_mark =
      injector != nullptr ? injector->aborted_work_seconds() : 0.0;

  Status last = Status::OK();
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    const bool resume = attempt > 0 && optimizer->CanResume();
    if (attempt > 0) {
      if (resume) {
        ++r->resumes;
      } else {
        ++r->restarts;
      }
    }
    auto result = resume ? optimizer->ResumeFromLastCheckpoint()
                         : optimizer->Run(query);
    if (result.ok()) {
      r->total_paid_seconds =
          result.value().metrics.simulated_seconds + r->wasted_seconds;
      return result;
    }
    last = result.status();
    if (injector != nullptr) {
      const double now = injector->aborted_work_seconds();
      r->wasted_seconds += now - aborted_mark;
      aborted_mark = now;
    }
    // kCancelled and kResourceExhausted are terminal by design: a
    // cancelled/over-deadline/rejected query must not burn more attempts.
    if (!last.retryable()) break;
  }

  // The query is not going to finish; reclaim whatever intermediates the
  // attempts left behind so a failed query does not leak temp tables, and
  // sweep any grace-join spill runs still sitting in the spill directory
  // (a cancel can land between a partition's write and its read-back).
  // With a context attached, optimizers prefix their temp tables
  // "q<id>_" (Optimizer::TempPrefix), so the sweep is scoped to THIS
  // query — under concurrent traffic an unscoped drop would destroy other
  // in-flight queries' intermediates. Ungoverned runs keep the historical
  // drop-everything behavior (one query at a time by construction).
  const std::string temp_prefix =
      optimizer->context() != nullptr
          ? "q" + std::to_string(optimizer->context()->id()) + "_"
          : std::string("");
  std::vector<std::string> dropped =
      engine->catalog().DropTempTablesWithPrefix(temp_prefix);
  for (const std::string& name : dropped) engine->stats().Remove(name);
  const std::string spill_prefix =
      optimizer->context() != nullptr
          ? optimizer->context()->SpillFilePrefix()
          : std::string("__spill_");
  (void)RemoveFilesWithPrefix(engine->cluster().spill_directory, spill_prefix);
  r->total_paid_seconds = r->wasted_seconds;
  return last;
}

}  // namespace dynopt
