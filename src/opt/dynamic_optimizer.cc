#include "opt/dynamic_optimizer.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>

#include "common/metrics_registry.h"
#include "opt/error_stats.h"
#include "opt/finalize.h"
#include "opt/plan_builder.h"
#include "opt/profile_archive.h"
#include "opt/reconstruction.h"
#include "opt/static_optimizer.h"
#include "plan/analysis.h"

namespace dynopt {

namespace {

/// Columns the materialized output of `edge` must carry: projections and
/// keys of every *other* join edge provided by either joined side.
std::vector<std::string> RequiredOutputColumns(const QuerySpec& spec,
                                               const JoinEdge& edge) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  auto add = [&](const std::string& name) {
    if (seen.insert(name).second) out.push_back(name);
  };
  const TableRef* left = spec.FindRef(edge.left_alias);
  const TableRef* right = spec.FindRef(edge.right_alias);
  for (const auto& proj : spec.projections) {
    if (left->Provides(proj) || right->Provides(proj)) add(proj);
  }
  for (const auto& other : spec.joins) {
    bool is_executed = (other.left_alias == edge.left_alias &&
                        other.right_alias == edge.right_alias) ||
                       (other.left_alias == edge.right_alias &&
                        other.right_alias == edge.left_alias);
    if (is_executed) continue;
    for (const std::string& alias : {edge.left_alias, edge.right_alias}) {
      if (!other.Involves(alias)) continue;
      for (const auto& key : other.KeysOf(alias)) add(key);
    }
  }
  // Degenerate case: nothing downstream needs this result's columns (can
  // only happen for pathological projection-less queries); keep the join
  // keys so the dataset is non-empty schema-wise.
  if (out.empty()) {
    for (const auto& [l, r] : edge.keys) {
      add(l);
      add(r);
    }
  }
  return out;
}

/// Key columns of future joins among `available` — the "attributes that
/// participate on subsequent join stages" the paper collects online
/// statistics for.
std::vector<std::string> FutureJoinKeyColumns(
    const QuerySpec& spec, const JoinEdge& executed,
    const std::vector<std::string>& available) {
  std::set<std::string> keys;
  for (const auto& other : spec.joins) {
    bool is_executed = (other.left_alias == executed.left_alias &&
                        other.right_alias == executed.right_alias) ||
                       (other.left_alias == executed.right_alias &&
                        other.right_alias == executed.left_alias);
    if (is_executed) continue;
    for (const auto& [l, r] : other.keys) {
      keys.insert(l);
      keys.insert(r);
    }
  }
  std::vector<std::string> out;
  for (const auto& col : available) {
    if (keys.count(col) > 0) out.push_back(col);
  }
  return out;
}

/// Replaces each leaf of `tree` by its recorded subtree over original
/// aliases (used to report the effective join order).
std::shared_ptr<const JoinTree> ExpandTree(
    const std::shared_ptr<const JoinTree>& tree,
    const std::map<std::string, std::shared_ptr<const JoinTree>>& subtrees) {
  if (tree->IsLeaf()) {
    auto it = subtrees.find(tree->alias);
    return it != subtrees.end() ? it->second : tree;
  }
  return JoinTree::Join(ExpandTree(tree->left, subtrees),
                        ExpandTree(tree->right, subtrees), tree->method);
}

}  // namespace

DynamicOptimizer::DynamicOptimizer(Engine* engine,
                                   const DynamicOptimizerOptions& options)
    : engine_(engine), options_(options) {}

Result<OptimizerRunResult> DynamicOptimizer::Run(const QuerySpec& query) {
  DynamicCheckpoint state;
  state.spec = query;
  state.spec.NormalizeJoins();
  DYNOPT_RETURN_IF_ERROR(state.spec.Validate());
  for (const auto& ref : state.spec.tables) {
    state.subtrees[ref.alias] = JoinTree::Leaf(ref.alias);
    state.base_tables[ref.alias] = ref.table;
  }
  return RunFromState(std::move(state));
}

Result<OptimizerRunResult> DynamicOptimizer::Resume(
    DynamicCheckpoint checkpoint) {
  // The checkpoint data are the materialized temp tables; verify they are
  // still alive before continuing.
  for (const auto& name : checkpoint.temp_tables) {
    if (!engine_->catalog().HasTable(name)) {
      return Status::NotFound("checkpoint temp table " + name +
                              " no longer exists; cannot resume");
    }
  }
  return RunFromState(std::move(checkpoint));
}

Result<OptimizerRunResult> DynamicOptimizer::ResumeFromLastCheckpoint() {
  if (!last_checkpoint_.has_value()) {
    return Status::InvalidArgument(
        "dynamic: no checkpoint to resume from (last run did not fail "
        "with a retryable error)");
  }
  DynamicCheckpoint checkpoint = std::move(*last_checkpoint_);
  last_checkpoint_.reset();
  return Resume(std::move(checkpoint));
}

Result<OptimizerRunResult> DynamicOptimizer::RunFromState(
    DynamicCheckpoint state) {
  const auto start = std::chrono::steady_clock::now();
  last_checkpoint_.reset();
  // Fingerprints state.spec before push-down rewrites it, so a resumed run
  // keeps the fingerprint of the original query (via spec.base_tables).
  IntrospectionRun introspection(engine_, state.spec, options_.profile_label,
                                 ctx_);
  TraceSpan query_span("query:" + options_.profile_label, "query");
  JobExecutor executor = engine_->MakeExecutor(ctx_);
  std::ostringstream trace;
  trace << state.trace;

  // Temp tables used to leak when a run died between materializing an
  // intermediate and finish(): the early error return skipped the drop
  // loop. This guard drops them on every exit path instead — except when a
  // retryable failure cut a checkpoint, because the temp tables *are* the
  // checkpoint data a later Resume() reads.
  struct TempCleanup {
    Engine* engine;
    const std::vector<std::string>* names;
    bool armed;
    ~TempCleanup() {
      if (!armed) return;
      for (const auto& name : *names) {
        (void)engine->catalog().DropTable(name);
        engine->stats().Remove(name);
        engine->sketches().RemoveTable(name);
      }
    }
  } cleanup{engine_, &state.temp_tables, options_.drop_temp_tables};

  // Cuts a checkpoint after a completed stage; returns true when the run
  // must abort here (failure injection).
  auto checkpoint_and_maybe_fail = [&]() {
    ++state.completed_stages;
    state.trace = trace.str();
    if (options_.inject_failure_after_stages >= 0 &&
        state.completed_stages >= options_.inject_failure_after_stages) {
      last_checkpoint_ = state;
      cleanup.armed = false;
      return true;
    }
    return false;
  };

  // Routes a mid-stage executor failure. Retryable faults (injected node
  // loss, detected corruption) cut a checkpoint at `at` — the state as of
  // the last completed stage boundary, so the dying stage's partial
  // metrics never leak into work-already-paid-for — and keep the temp
  // tables alive for ResumeFromLastCheckpoint(). Fatal errors leave no
  // checkpoint and let the cleanup guard reclaim the temps.
  auto fail_stage = [&](Status st, DynamicCheckpoint at) -> Status {
    if (st.retryable()) {
      last_checkpoint_ = std::move(at);
      cleanup.armed = false;
    }
    return st;
  };

  // ---- Risk-aware planning state (all knobs off by default) --------------
  // error_feedback: observed q-errors widen the selectivity confidence
  // interval for the *remaining* decisions and can buy extra
  // re-optimization checkpoints. use_error_store: past queries' errors seed
  // the widening before anything is observed. Both fail soft: no error
  // signal => neutral risk => planning identical to the knobs-off build.
  const RiskConfig& risk_cfg = engine_->cluster().risk;
  ErrorStatsStore* err_store = EngineErrorStats(engine_);
  const bool use_risk = risk_cfg.error_feedback || err_store != nullptr;
  SelectivityRisk risk;  // Rebuilt before every planning round.
  auto rebuild_risk = [&]() {
    risk = err_store != nullptr
               ? PriorRisk(state.spec, err_store, risk_cfg.max_ci_widening)
               : SelectivityRisk();
    if (!risk_cfg.error_feedback) return;
    const double observed = std::clamp(state.decisions.GeoMeanQError(), 1.0,
                                       risk_cfg.max_ci_widening);
    if (observed <= 1.0) return;
    // Widen every still-estimated input (intermediates have exact counts)
    // and the join outputs by the error observed so far this query.
    risk.global_factor = std::max(risk.global_factor, observed);
    for (const auto& ref : state.spec.tables) {
      if (ref.is_intermediate) continue;
      double& f = risk.alias_factors[ref.alias];
      f = std::max(f, observed);
    }
  };
  // Stamps the dominant consumed prior onto a decision planned under the
  // current risk, so EXPLAIN can name the prior that shaped the plan.
  auto stamp_prior = [&](PlanDecision* d) {
    if (err_store != nullptr && risk.prior_factor > 1.0) {
      d->prior_key = risk.prior_key;
      d->prior_factor = risk.prior_factor;
    }
  };
  // Base-table names for a subtree's alias set (store keys must outlive
  // this query's temp aliases).
  auto base_tables_of = [&](const std::set<std::string>& aliases) {
    std::vector<std::string> out;
    for (const auto& alias : aliases) {
      auto it = state.base_tables.find(alias);
      out.push_back(it != state.base_tables.end() ? it->second : alias);
    }
    return out;
  };

  // ---- Stage 1: predicate push-down (Algorithm 1 lines 6-9) -------------
  if (options_.pushdown_predicates && !state.pushdown_done) {
    std::vector<std::string> aliases;
    for (const auto& ref : state.spec.tables) aliases.push_back(ref.alias);
    for (size_t i = state.pushdown_next_index; i < aliases.size(); ++i) {
      // Stage boundary: a cancelled/expired query stops here with
      // kCancelled; the cleanup guard (still armed — kCancelled is not
      // retryable) reclaims the temp tables already materialized.
      DYNOPT_RETURN_IF_ERROR(CheckContext());
      state.pushdown_next_index = i;
      const std::string& alias = aliases[i];
      std::vector<ExprPtr> preds = state.spec.PredicatesFor(alias);
      if (preds.empty()) continue;
      PredicateShape shape = AnalyzePredicates(preds);
      if (!shape.RequiresPushDown() && !options_.pushdown_simple_predicates) {
        continue;  // Single simple predicate: estimated via histogram.
      }
      DYNOPT_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> leaf,
                              BuildLeafPlan(state.spec, alias));
      std::vector<std::string> needed =
          RequiredColumns(state.spec, alias, false);
      auto plan = PlanNode::Project(std::move(leaf), needed);
      // Estimate before executing: this is exactly what a static optimizer
      // would have believed about the filtered table.
      StatsView pd_view(&state.spec, &engine_->stats(), &engine_->catalog());
      CardinalityEstimator pd_estimator(&pd_view,
                                        options_.planner.estimation);
      const double pd_est_rows = pd_estimator.EstimateFilteredSize(alias);
      TraceSpan stage_span("pushdown:" + alias, "stage");
      DynamicCheckpoint stage_start = state;
      auto job_or = executor.Execute(*plan, state.spec.params);
      if (!job_or.ok()) {
        return fail_stage(job_or.status(), std::move(stage_start));
      }
      JobResult job = std::move(job_or).value();
      state.metrics.Add(job.metrics);
      // Sketch the filtered table's join-key columns so later planning
      // rounds can estimate joins against it from Fast-AGMS rather than
      // formula (1).
      std::vector<std::string> sketch_cols;
      if (options_.collect_sketches) {
        std::set<std::string> join_keys;
        for (const auto& j : state.spec.joins) {
          if (!j.Involves(alias)) continue;
          for (const auto& key : j.KeysOf(alias)) join_keys.insert(key);
        }
        for (const auto& col : needed) {
          if (join_keys.count(col) > 0) sketch_cols.push_back(col);
        }
      }
      auto sink_or =
          executor.Materialize(std::move(job.data), TempPrefix("pushdown"), needed,
                               options_.collect_online_stats,
                               &state.metrics,
                               sketch_cols.empty() ? nullptr : &sketch_cols);
      if (!sink_or.ok()) {
        return fail_stage(sink_or.status(), std::move(stage_start));
      }
      SinkResult sink = std::move(sink_or).value();
      state.temp_tables.push_back(sink.table_name);
      trace << "[pushdown] " << alias << " -> " << sink.table_name << " ("
            << sink.stats.row_count << " rows)\n";
      PlanDecision decision;
      decision.point = "pushdown:" + alias;
      decision.chosen = "materialize filtered " + alias;
      decision.estimated_rows = pd_est_rows;
      decision.actual_rows = static_cast<double>(sink.stats.row_count);
      if (err_store != nullptr) {
        auto bt = state.base_tables.find(alias);
        err_store->Record(
            TableErrorKey(bt != state.base_tables.end() ? bt->second : alias,
                          preds),
            decision.QError());
      }
      state.decisions.Record(std::move(decision));
      state.subtree_actual_rows[SubtreeKey({alias})] = sink.stats.row_count;
      stage_span.AddArg("actual_rows",
                        static_cast<double>(sink.stats.row_count));
      stage_span.End();
      state.spec = ReplaceWithFiltered(state.spec, alias, sink.table_name,
                                       std::move(needed));
      state.pushdown_next_index = i + 1;
      if (checkpoint_and_maybe_fail()) {
        return Status::Transient("injected failure after push-down stage");
      }
    }
    state.pushdown_done = true;
  }

  // Temp tables are dropped by the cleanup guard on scope exit (success
  // and fatal failure alike), honoring options_.drop_temp_tables.
  auto finish = [&](OptimizerRunResult result) -> OptimizerRunResult {
    auto profile = std::make_shared<QueryProfile>();
    profile->optimizer = options_.profile_label;
    profile->decisions = state.decisions;
    profile->subtree_actual_rows = state.subtree_actual_rows;
    FinalizeProfile(profile.get(), &result.metrics, &query_span,
                    &engine_->metrics_registry());
    result.profile = std::move(profile);
    // Persist what this query taught the error memory; a failed save only
    // costs the lesson, never the query.
    if (err_store != nullptr) (void)err_store->Save();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    introspection.Complete(&result);
    return result;
  };

  // ---- Figure-6 ablation: push-down only, then one static job -----------
  if (options_.stop_after_pushdown) {
    StatsView pd_view(&state.spec, &engine_->stats(), &engine_->catalog());
    double dp_rows = -1;
    double dp_cost = -1;
    rebuild_risk();
    DYNOPT_ASSIGN_OR_RETURN(
        std::shared_ptr<const JoinTree> tree,
        StaticCostBasedOptimizer::PlanWithDp(
            state.spec, pd_view, engine_->cluster(), options_.planner,
            &dp_rows, &dp_cost, use_risk ? &risk : nullptr));
    DYNOPT_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> plan,
                            BuildPhysicalPlan(state.spec, *tree, true));
    auto job_or = executor.Execute(*plan, state.spec.params);
    if (!job_or.ok()) return fail_stage(job_or.status(), state);
    JobResult job = std::move(job_or).value();
    OptimizerRunResult result;
    result.metrics = state.metrics;
    result.metrics.Add(job.metrics);
    trace << "[pushdown-only] static plan: " << tree->ToString() << "\n";
    PlanDecision decision;
    decision.point = "static-rest";
    decision.chosen = tree->ToString();
    decision.estimated_rows = dp_rows;
    decision.estimated_cost = dp_cost;
    stamp_prior(&decision);
    decision.actual_rows = static_cast<double>(job.data.NumRows());
    if (err_store != nullptr) {
      err_store->Record(
          JoinErrorKey(base_tables_of(
              ExpandTree(tree, state.subtrees)->Aliases())),
          decision.QError());
    }
    state.decisions.Record(std::move(decision));
    state.subtree_actual_rows[SubtreeKey(
        ExpandTree(tree, state.subtrees)->Aliases())] = job.data.NumRows();
    result.columns = job.data.columns;
    result.rows = job.data.GatherRows();
    DYNOPT_RETURN_IF_ERROR(
        ApplyPostProcessing(state.spec, engine_->cluster(), &result));
    result.join_tree = ExpandTree(tree, state.subtrees);
    result.plan_trace = trace.str();
    return finish(std::move(result));
  }

  // ---- Stage 2: re-optimization loop (Algorithm 1 lines 11-15) ----------
  // With error feedback on, a query whose observed q-error crossed the
  // threshold earns extra rounds: instead of handing the final two joins to
  // PlanRemaining on estimates it has already seen fail, it materializes
  // one more join and plans the tail on exact counts. Statics never get
  // this chance — it is the dynamic strategy's unique ability to buy
  // information mid-query.
  auto extra_reopt_due = [&]() {
    return risk_cfg.error_feedback && state.spec.joins.size() == 2 &&
           state.extra_reopts < risk_cfg.max_extra_reopts &&
           state.decisions.MaxQError() > risk_cfg.qerror_reopt_threshold;
  };
  while (state.spec.joins.size() > 2 || extra_reopt_due()) {
    // Re-optimization point: the natural cancellation boundary (the paper's
    // materialization points are exactly where mid-query decisions — here,
    // stopping — are safe).
    DYNOPT_RETURN_IF_ERROR(CheckContext());
    const bool extra_round = state.spec.joins.size() <= 2;
    if (extra_round) {
      trace << "[error-reopt] max q-error " << state.decisions.MaxQError()
            << " > " << risk_cfg.qerror_reopt_threshold
            << "; extra materialization point before the final join\n";
    }
    TraceSpan round_span("reopt-" + std::to_string(state.join_counter),
                         "opt");
    StatsView view(&state.spec, &engine_->stats(), &engine_->catalog());
    rebuild_risk();
    Planner planner(&view, engine_->cluster(), options_.planner,
                    use_risk ? &risk : nullptr,
                    options_.use_sketch_estimates ? &engine_->sketches()
                                                  : nullptr);
    DYNOPT_ASSIGN_OR_RETURN(PlannedJoin planned, planner.PickNextJoin());

    const std::string& build = planned.build_alias;
    const std::string& probe = planned.edge.Other(build);
    auto step_tree = JoinTree::Join(JoinTree::Leaf(build),
                                    JoinTree::Leaf(probe), planned.method);
    DYNOPT_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> join_plan,
                            BuildPhysicalPlan(state.spec, *step_tree, false));
    std::vector<std::string> out_columns =
        RequiredOutputColumns(state.spec, planned.edge);
    auto plan = PlanNode::Project(std::move(join_plan), out_columns);

    DynamicCheckpoint stage_start = state;
    auto job_or = executor.Execute(*plan, state.spec.params);
    if (!job_or.ok()) {
      return fail_stage(job_or.status(), std::move(stage_start));
    }
    JobResult job = std::move(job_or).value();
    state.metrics.Add(job.metrics);

    // Online statistics: only on attributes of subsequent join stages, and
    // skipped in the very last loop iteration (no further re-optimization
    // will consume them — Section 5.3).
    bool last_iteration = state.spec.joins.size() == 3 || extra_round;
    std::vector<std::string> stats_columns =
        FutureJoinKeyColumns(state.spec, planned.edge, out_columns);
    bool collect = options_.collect_online_stats && !last_iteration &&
                   !stats_columns.empty();
    // Sketches are collected on every round, including the last: the tail
    // PlanRemaining still estimates the final two joins, and Fast-AGMS on
    // the freshly materialized intermediate is exactly what sharpens it.
    bool sketch = options_.collect_sketches && !stats_columns.empty();
    auto sink_or = executor.Materialize(std::move(job.data), TempPrefix("join"),
                                        stats_columns, collect,
                                        &state.metrics,
                                        sketch ? &stats_columns : nullptr);
    if (!sink_or.ok()) {
      return fail_stage(sink_or.status(), std::move(stage_start));
    }
    SinkResult sink = std::move(sink_or).value();
    state.temp_tables.push_back(sink.table_name);

    const int round = state.join_counter;
    std::string new_alias = "__j" + std::to_string(state.join_counter++);
    trace << "[join] " << planned.ToString() << " -> " << sink.table_name
          << " (" << sink.stats.row_count << " rows, est "
          << planned.estimated_cardinality << ")\n";
    state.subtrees[new_alias] = JoinTree::Join(
        state.subtrees.at(build), state.subtrees.at(probe), planned.method);
    state.subtrees.erase(build);
    state.subtrees.erase(probe);
    PlanDecision decision;
    decision.point = "reopt-" + std::to_string(round);
    decision.chosen = planned.ToString();
    stamp_prior(&decision);
    decision.method = planned.method;
    decision.build_alias = planned.build_alias;
    decision.estimated_rows = planned.estimated_cardinality;
    decision.estimated_cost = planned.estimated_cost;
    decision.provenance = planned.provenance;
    decision.rejected = planned.rejected;
    decision.actual_rows = static_cast<double>(sink.stats.row_count);
    if (err_store != nullptr) {
      err_store->Record(
          JoinErrorKey(
              base_tables_of(state.subtrees.at(new_alias)->Aliases())),
          decision.QError());
    }
    state.decisions.Record(std::move(decision));
    state.subtree_actual_rows[SubtreeKey(
        state.subtrees.at(new_alias)->Aliases())] = sink.stats.row_count;
    if (extra_round) {
      // Spend the trigger only once the bought checkpoint actually exists:
      // a failure in this round resumes from stage_start (pre-increment)
      // and re-earns it, so it is neither lost nor double-counted.
      ++state.extra_reopts;
      state.metrics.error_reopt_triggers += 1;
      engine_->metrics_registry()
          .counter("opt.error_reopt_triggers")
          ->Increment();
    }
    round_span.AddArg("actual_rows",
                      static_cast<double>(sink.stats.row_count));
    round_span.AddArg("est_rows", planned.estimated_cardinality);
    round_span.End();
    state.spec = ReconstructAfterJoin(state.spec, planned.edge,
                                      sink.table_name, new_alias,
                                      std::move(out_columns));
    if (checkpoint_and_maybe_fail()) {
      return Status::Transient("injected failure after join stage");
    }
  }

  // ---- Stage 3: final job (Algorithm 1 lines 17-18) ---------------------
  DYNOPT_RETURN_IF_ERROR(CheckContext());
  TraceSpan final_span("final", "stage");
  StatsView view(&state.spec, &engine_->stats(), &engine_->catalog());
  rebuild_risk();
  Planner planner(&view, engine_->cluster(), options_.planner,
                  use_risk ? &risk : nullptr,
                  options_.use_sketch_estimates ? &engine_->sketches()
                                                : nullptr);
  std::vector<PlannedJoin> final_steps;
  DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<const JoinTree> final_tree,
                          planner.PlanRemaining(&final_steps));
  DYNOPT_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> final_plan,
                          BuildPhysicalPlan(state.spec, *final_tree, true));
  auto job_or = executor.Execute(*final_plan, state.spec.params);
  if (!job_or.ok()) return fail_stage(job_or.status(), state);
  JobResult job = std::move(job_or).value();
  OptimizerRunResult result;
  result.metrics = state.metrics;
  result.metrics.Add(job.metrics);
  trace << "[final] " << final_tree->ToString() << "\n";

  // The final job's output (before post-processing) is the actual for the
  // last planning decision; the inner of a two-join tail never
  // materializes separately, so it is logged estimate-only.
  if (final_steps.size() == 2) {
    PlanDecision inner;
    inner.point = "final-inner";
    inner.chosen = final_steps[0].ToString();
    stamp_prior(&inner);
    inner.method = final_steps[0].method;
    inner.build_alias = final_steps[0].build_alias;
    inner.estimated_rows = final_steps[0].estimated_cardinality;
    inner.estimated_cost = final_steps[0].estimated_cost;
    inner.provenance = final_steps[0].provenance;
    inner.rejected = final_steps[0].rejected;
    state.decisions.Record(std::move(inner));
  }
  {
    PlanDecision decision;
    decision.point = "final";
    decision.chosen = final_tree->ToString();
    stamp_prior(&decision);
    if (!final_steps.empty()) {
      const PlannedJoin& last = final_steps.back();
      decision.method = last.method;
      decision.build_alias = last.build_alias;
      decision.estimated_rows = last.estimated_cardinality;
      decision.estimated_cost = last.estimated_cost;
      decision.provenance = last.provenance;
      decision.rejected = last.rejected;
    }
    decision.actual_rows = static_cast<double>(job.data.NumRows());
    if (err_store != nullptr) {
      err_store->Record(
          JoinErrorKey(base_tables_of(
              ExpandTree(final_tree, state.subtrees)->Aliases())),
          decision.QError());
    }
    state.decisions.Record(std::move(decision));
  }
  state.subtree_actual_rows[SubtreeKey(
      ExpandTree(final_tree, state.subtrees)->Aliases())] = job.data.NumRows();
  final_span.AddArg("actual_rows", static_cast<double>(job.data.NumRows()));
  final_span.End();

  result.columns = job.data.columns;
  result.rows = job.data.GatherRows();
  DYNOPT_RETURN_IF_ERROR(
      ApplyPostProcessing(state.spec, engine_->cluster(), &result));
  result.join_tree = ExpandTree(final_tree, state.subtrees);
  result.plan_trace = trace.str();
  return finish(std::move(result));
}

}  // namespace dynopt
