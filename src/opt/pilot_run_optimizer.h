#ifndef DYNOPT_OPT_PILOT_RUN_OPTIMIZER_H_
#define DYNOPT_OPT_PILOT_RUN_OPTIMIZER_H_

#include <string>

#include "exec/engine.h"
#include "opt/optimizer.h"
#include "opt/planner.h"
#include "stats/column_stats.h"

namespace dynopt {

struct PilotRunOptions {
  PlannerOptions planner;
  /// LIMIT k of each pilot run: sampling stops once k tuples have been
  /// output (the technique of [23] as described in Section 7 of the paper).
  size_t sample_limit = 1000;
  StatsOptions stats_options;
};

/// The pilot-run baseline [23]: before optimizing, a select-project "pilot
/// run" (local predicates included, LIMIT k) executes over a sample of
/// every base dataset; sample statistics — selectivities, scaled distinct
/// counts, histograms — seed a complete initial plan (same DP as the
/// cost-based optimizer). Execution then proceeds to one re-optimization
/// point after the first join, where online statistics adjust the rest of
/// the plan.
///
/// Its weakness (which the paper exploits): distinct counts scaled up from
/// a small skewed sample are unreliable for non-pk/fk joins, so the initial
/// join order can be wrong; and indexes are unusable on intermediates, so
/// INLJ opportunities vanish after the first join.
class PilotRunOptimizer : public Optimizer {
 public:
  explicit PilotRunOptimizer(Engine* engine,
                             const PilotRunOptions& options = PilotRunOptions());

  std::string name() const override { return "pilot-run"; }
  Result<OptimizerRunResult> Run(const QuerySpec& query) override;

 private:
  Engine* engine_;
  PilotRunOptions options_;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_PILOT_RUN_OPTIMIZER_H_
