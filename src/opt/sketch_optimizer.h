#ifndef DYNOPT_OPT_SKETCH_OPTIMIZER_H_
#define DYNOPT_OPT_SKETCH_OPTIMIZER_H_

#include <string>

#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/optimizer.h"

namespace dynopt {

/// The seventh strategy: the dynamic optimizer's decomposition loop, but
/// with join cardinalities answered from Fast-AGMS join-size sketches
/// (predicate transfer's statistics layer) instead of the formula-(1)
/// ndv quotient wherever a sketch pair is available.
///
/// Base-table join-key columns are sketched once per engine at the first
/// Run() (priced like online statistics collection and amortized across
/// queries, mirroring AsterixDB's load-time statistics); every materialized
/// intermediate re-sketches its future join keys at the materialization
/// checkpoint, so each re-optimization round plans from sketch estimates of
/// the *remaining* joins. Decisions answered from sketches carry
/// est_src=sketch in the decision log; formula-(1) fallbacks under this
/// strategy carry est_src=stats.
class SketchDynamicOptimizer : public Optimizer {
 public:
  explicit SketchDynamicOptimizer(
      Engine* engine, const PlannerOptions& options = PlannerOptions());

  std::string name() const override { return "sketch-dynamic"; }
  Result<OptimizerRunResult> Run(const QuerySpec& query) override;

  /// Cancellation/deadline checks happen inside the wrapped dynamic
  /// optimizer's decomposition loop, so forward the context there too.
  void set_context(QueryContext* ctx) override {
    Optimizer::set_context(ctx);
    inner_.set_context(ctx);
  }

  /// Decomposition materializes every intermediate, so the wrapped dynamic
  /// optimizer's checkpoints work unchanged here. (Base sketches survive in
  /// the engine across the failure, so a resumed run replans identically.)
  bool CanResume() const override { return inner_.CanResume(); }
  Result<OptimizerRunResult> ResumeFromLastCheckpoint() override {
    return inner_.ResumeFromLastCheckpoint();
  }

 private:
  /// Builds Bloom + Fast-AGMS sketches over every base-table join-key
  /// column of `query` that is not yet registered, charging
  /// stats_seconds_per_value per (row, column) divided across the table's
  /// partitions into `metrics`. Columns already sketched (by a previous
  /// query on this engine) are free.
  Status EnsureBaseSketches(const QuerySpec& query, ExecMetrics* metrics);

  Engine* engine_;
  DynamicOptimizer inner_;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_SKETCH_OPTIMIZER_H_
