#include "opt/sketch_optimizer.h"

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "exec/row_kernels.h"

namespace dynopt {

namespace {

DynamicOptimizerOptions MakeSketchOptions(const PlannerOptions& base) {
  DynamicOptimizerOptions options;
  options.planner = base;
  options.collect_sketches = true;
  options.use_sketch_estimates = true;
  options.profile_label = "sketch-dynamic";
  return options;
}

}  // namespace

SketchDynamicOptimizer::SketchDynamicOptimizer(Engine* engine,
                                               const PlannerOptions& options)
    : engine_(engine), inner_(engine, MakeSketchOptions(options)) {}

Status SketchDynamicOptimizer::EnsureBaseSketches(const QuerySpec& query,
                                                  ExecMetrics* metrics) {
  SketchOptions opts;
  opts.bits_per_key = engine_->cluster().sketch.pt_bits_per_key;
  opts.agms_depth = engine_->cluster().sketch.agms_depth;
  opts.agms_width = engine_->cluster().sketch.agms_width;
  opts.seed = engine_->cluster().sketch.seed;
  const double stats_rate = engine_->cluster().stats_seconds_per_value;

  for (const auto& ref : query.tables) {
    if (ref.is_intermediate) continue;
    // Unqualified join-key columns of this table.
    std::set<std::string> columns;
    const std::string prefix = ref.alias + ".";
    for (const auto& edge : query.joins) {
      if (!edge.Involves(ref.alias)) continue;
      for (std::string key : edge.KeysOf(ref.alias)) {
        if (key.rfind(prefix, 0) == 0) key = key.substr(prefix.size());
        columns.insert(std::move(key));
      }
    }
    if (columns.empty()) continue;
    DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            engine_->catalog().GetTable(ref.table));
    for (const auto& column : columns) {
      if (engine_->sketches().Has(ref.table, column)) continue;  // Amortized.
      const int col = table->schema().FieldIndex(column);
      if (col < 0) continue;  // Nothing to sketch (resolved at plan time).
      auto sketch = std::make_shared<JoinKeySketch>(JoinKeySketch{
          BloomFilter(std::max<uint64_t>(table->NumRows(), 1),
                      opts.bits_per_key, opts.seed),
          FastAgmsSketch(opts), 0, 0});
      for (size_t p = 0; p < table->num_partitions(); ++p) {
        for (const Row& row : table->partition(p)) {
          ++sketch->rows;
          if (row[static_cast<size_t>(col)].is_null()) {
            ++sketch->null_keys;
            continue;
          }
          const uint64_t h = HashRowKeyInline(row, &col, 1);
          sketch->bloom.Insert(h);
          sketch->agms.Update(h);
        }
      }
      engine_->sketches().Put(ref.table, column,
                              std::move(sketch));
      // Priced like online statistics: one pass over the column, split
      // across the table's partitions (each node sketches its local rows).
      const double seconds =
          static_cast<double>(table->NumRows()) * stats_rate /
          static_cast<double>(std::max<size_t>(table->num_partitions(), 1));
      metrics->stats_seconds += seconds;
      metrics->simulated_seconds += seconds;
    }
  }
  return Status::OK();
}

Result<OptimizerRunResult> SketchDynamicOptimizer::Run(
    const QuerySpec& query) {
  ExecMetrics sketch_metrics;
  DYNOPT_RETURN_IF_ERROR(EnsureBaseSketches(query, &sketch_metrics));
  auto result_or = inner_.Run(query);
  if (!result_or.ok()) return result_or.status();
  OptimizerRunResult result = std::move(result_or).value();
  // The base-sketch pass ran before the inner run snapshotted its profile;
  // fold its cost into both views so they stay consistent. Add() treats
  // rows_out as "latest operator", so carry the query's real output count.
  sketch_metrics.rows_out = result.metrics.rows_out;
  result.metrics.Add(sketch_metrics);
  if (result.profile != nullptr) result.profile->metrics.Add(sketch_metrics);
  return result;
}

}  // namespace dynopt
