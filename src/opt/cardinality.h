#ifndef DYNOPT_OPT_CARDINALITY_H_
#define DYNOPT_OPT_CARDINALITY_H_

#include <memory>
#include <string>

#include "opt/stats_view.h"
#include "plan/query_spec.h"
#include "stats/sketch.h"

namespace dynopt {

/// Knobs selecting which optimizer persona the estimator plays.
struct EstimationOptions {
  /// Use equi-height histograms for simple fixed-value predicates (paper
  /// Section 5.1: single local predicates are estimated, not executed).
  bool use_histograms = true;
  /// Selinger defaults for predicates the optimizer is blind to (UDFs,
  /// parameters): 1/10 for equalities, 1/3 for ranges [28].
  double default_eq_selectivity = 0.1;
  double default_range_selectivity = 1.0 / 3.0;
  /// INGRES mode: only dataset cardinalities are known; distinct counts
  /// and histograms are ignored.
  bool cardinality_only = false;
};

/// Join and filter cardinality estimation.
///
/// The join formula is the paper's formula (1) (from Selinger [28]):
///     |A join_k B| = S(A) * S(B) / max(U(A.k), U(B.k))
/// extended to composite keys by multiplying the max-ndv terms (capped by
/// the input sizes). S(x) is the post-predicate size: when a dataset's
/// predicates were already executed (dynamic optimization), S comes from
/// the materialized intermediate's fresh stats; otherwise it is estimated
/// from base-table sketches under the independence assumption.
class CardinalityEstimator {
 public:
  CardinalityEstimator(const StatsView* view,
                       const EstimationOptions& options = EstimationOptions())
      : view_(view), options_(options) {}

  /// Estimated selectivity (in [0,1]) of the conjunction of all local
  /// predicates attached to `alias` — the product of per-conjunct
  /// selectivities (independence assumption), each estimated from the
  /// histogram when simple or defaulted when complex.
  double EstimatePredicateSelectivity(const std::string& alias) const;

  /// Estimated rows of `alias` after its local predicates.
  double EstimateFilteredSize(const std::string& alias) const;

  /// Estimated bytes of `alias` after its local predicates (selectivity
  /// scaled byte size; what the broadcast rule compares to the threshold).
  double EstimateFilteredBytes(const std::string& alias) const;

  /// Formula (1): estimated result rows of `edge` between the two
  /// (post-predicate) inputs. Optional overrides allow the caller to plug
  /// in sizes of already-estimated sub-plans (DP enumeration); negative
  /// override means "estimate from stats".
  double EstimateJoinCardinality(const JoinEdge& edge,
                                 double left_size_override = -1.0,
                                 double right_size_override = -1.0) const;

  /// Distinct-count of join key columns on `alias`'s side of `edge`
  /// (product over composite key, each capped by the filtered size).
  double EstimateKeyNdv(const JoinEdge& edge, const std::string& alias,
                        double size_cap) const;

  /// Attaches the engine's join-key sketch registry; null detaches. With a
  /// registry attached, SketchJoinCardinality can answer from Fast-AGMS
  /// sketches.
  void SetSketches(const SketchManager* sketches) { sketches_ = sketches; }
  bool has_sketches() const { return sketches_ != nullptr; }

  /// Sketch-backed join estimate: when `edge` is a single-key join and both
  /// sides carry a Fast-AGMS sketch, returns the sketch dot product —
  /// sum_k f_left(k) * f_right(k), the exact equi-join size up to sketch
  /// variance — scaled by each side's restriction (local-predicate
  /// selectivity or size override) under the containment assumption.
  /// Returns -1 when no sketch estimate is available (caller falls back to
  /// formula (1)).
  double SketchJoinCardinality(const JoinEdge& edge,
                               double left_size_override = -1.0,
                               double right_size_override = -1.0) const;

  /// Sketch for `alias`'s side of a qualified key column: intermediates
  /// resolve under their temp-table name and qualified column;
  /// base tables under the table name and unqualified column (mirroring
  /// StatsView::Column's resolution).
  std::shared_ptr<const JoinKeySketch> SketchFor(const std::string& alias,
                                                 const std::string& key) const;

  const EstimationOptions& options() const { return options_; }
  const StatsView& view() const { return *view_; }

 private:
  double ConjunctSelectivity(const std::string& alias,
                             const ExprPtr& conjunct) const;

  const StatsView* view_;
  EstimationOptions options_;
  const SketchManager* sketches_ = nullptr;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_CARDINALITY_H_
