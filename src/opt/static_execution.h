#ifndef DYNOPT_OPT_STATIC_EXECUTION_H_
#define DYNOPT_OPT_STATIC_EXECUTION_H_

#include <memory>
#include <string>

#include "exec/engine.h"
#include "opt/join_tree.h"
#include "opt/optimizer.h"
#include "plan/query_spec.h"

namespace dynopt {

/// Executes a fully decided join tree as one pipelined job (no
/// re-optimization points, no materialization) — the execution mode of all
/// static strategies (cost-based, best-order, worst-order and the tail of
/// pilot-run). A non-null `ctx` makes the job cancellable at its operator
/// boundaries and accounts memory against the context's tracker.
///
/// With a non-null `profile`, the job's output cardinality (before
/// post-processing) back-patches decision `root_decision` in the profile's
/// log and is recorded under the tree's SubtreeKey; the finalized profile
/// (q-error metrics folded in, trace drained) is attached to the result.
/// Callers without a profile get one synthesized on the fly so every
/// OptimizerRunResult carries a non-null profile.
Result<OptimizerRunResult> ExecuteTreeAsSingleJob(
    Engine* engine, const QuerySpec& spec,
    std::shared_ptr<const JoinTree> tree, std::string plan_trace,
    QueryContext* ctx = nullptr,
    std::shared_ptr<QueryProfile> profile = nullptr, int root_decision = -1);

}  // namespace dynopt

#endif  // DYNOPT_OPT_STATIC_EXECUTION_H_
