#ifndef DYNOPT_OPT_STATIC_EXECUTION_H_
#define DYNOPT_OPT_STATIC_EXECUTION_H_

#include <memory>
#include <string>

#include "exec/engine.h"
#include "opt/join_tree.h"
#include "opt/optimizer.h"
#include "plan/query_spec.h"

namespace dynopt {

/// Executes a fully decided join tree as one pipelined job (no
/// re-optimization points, no materialization) — the execution mode of all
/// static strategies (cost-based, best-order, worst-order and the tail of
/// pilot-run). A non-null `ctx` makes the job cancellable at its operator
/// boundaries and accounts memory against the context's tracker.
Result<OptimizerRunResult> ExecuteTreeAsSingleJob(
    Engine* engine, const QuerySpec& spec,
    std::shared_ptr<const JoinTree> tree, std::string plan_trace,
    QueryContext* ctx = nullptr);

}  // namespace dynopt

#endif  // DYNOPT_OPT_STATIC_EXECUTION_H_
