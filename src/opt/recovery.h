#ifndef DYNOPT_OPT_RECOVERY_H_
#define DYNOPT_OPT_RECOVERY_H_

#include "exec/engine.h"
#include "opt/optimizer.h"
#include "plan/query_spec.h"

namespace dynopt {

/// Retry policy for query-level recovery (distinct from the per-partition
/// BackoffPolicy inside the executor: that one retries individual tasks;
/// this one re-drives whole optimizer runs after a task retry budget was
/// exhausted or a node was lost).
struct RecoveryPolicy {
  /// Total optimizer runs allowed, counting the initial one.
  int max_attempts = 5;
};

/// What recovery cost: how often the query was re-driven and how much
/// simulated work was thrown away doing so.
struct RecoveryReport {
  /// Whole-query restarts (strategy could not resume from a checkpoint).
  int restarts = 0;
  /// Checkpoint resumes (only the failed stage onward was re-executed).
  int resumes = 0;
  /// Simulated seconds of work that was paid for and then discarded: for
  /// each failed attempt, the work the dying job had completed when it was
  /// killed. A lower bound for multi-job strategies that restart (their
  /// earlier completed jobs are re-run too but are not re-counted here;
  /// the re-run shows up in total_paid_seconds instead).
  double wasted_seconds = 0;
  /// Everything the cluster charged for this query across all attempts:
  /// the successful run's simulated seconds (which for restarts includes
  /// re-done work) plus wasted_seconds. total_paid − fault-free baseline
  /// is the recovery cost BENCH_fault.json reports.
  double total_paid_seconds = 0;
};

/// Drives `optimizer` over `query` to completion under fault injection.
/// Retryable failures (injected node loss, exhausted task retries,
/// unrecoverable corruption of a materialized block) are re-driven: via
/// ResumeFromLastCheckpoint() when the strategy checkpoints (dynamic,
/// ingres-like), by a whole-query restart otherwise. Fatal errors and
/// retry exhaustion — including kCancelled/kResourceExhausted, which are
/// never retried — propagate after dropping the temp tables and spill
/// files the attempts left behind. With a QueryContext attached the sweep
/// is scoped to this query's "q<id>_" temp prefix and spill prefix, so
/// concurrent recovered queries cannot destroy each other's
/// intermediates; without a context it drops every temp table (the
/// historical single-query behavior).
Result<OptimizerRunResult> RunWithRecovery(Optimizer* optimizer,
                                           Engine* engine,
                                           const QuerySpec& query,
                                           const RecoveryPolicy& policy,
                                           RecoveryReport* report = nullptr);

}  // namespace dynopt

#endif  // DYNOPT_OPT_RECOVERY_H_
