#ifndef DYNOPT_OPT_DECISION_LOG_H_
#define DYNOPT_OPT_DECISION_LOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/tracer.h"
#include "exec/job.h"
#include "exec/metrics.h"

namespace dynopt {

/// A plan alternative the optimizer considered and rejected, with the cost
/// it was rejected at (estimated rows for join-order choices, estimated
/// exec-cost seconds for algorithm choices).
struct PlanAlternative {
  std::string description;
  double cost = 0;

  std::string ToString() const;
};

/// One join-order/algorithm decision: what the optimizer chose at one
/// decision point, what it estimated, and — back-patched once the subtree
/// materializes — what actually came out, so per-decision q-error is
/// computable. Logged by all six strategies.
struct PlanDecision {
  int id = -1;            // index in the owning DecisionLog
  std::string point;      // "pushdown:d1", "reopt-2", "final", "initial-plan"
  std::string chosen;     // human-readable choice, e.g. the planned join
  JoinMethod method = JoinMethod::kHashShuffle;
  std::string build_alias;       // empty when not a single-join decision
  double estimated_rows = -1;    // <0: no cardinality estimate applies
  double estimated_cost = -1;    // <0: no exec-cost estimate applies
  double actual_rows = -1;       // <0: never materialized / back-patched
  /// Estimate provenance: "sketch" (Fast-AGMS), "stats" (formula (1) under
  /// a sketch-enabled planner), or empty (historical stats-only path —
  /// keeps pre-sketch renderings byte-identical).
  std::string provenance;
  /// ErrorStatsStore prior consumed while planning this decision: the store
  /// key of the dominant widening factor and the factor itself. Empty/1.0
  /// when no prior was in play (the default — keeps pre-prior renderings
  /// byte-identical). Rendered as "prior=<key>x<factor>" and used by the
  /// plan-regression detector to name the prior that drove a divergence.
  std::string prior_key;
  double prior_factor = 1.0;
  std::vector<PlanAlternative> rejected;

  bool has_actual() const { return actual_rows >= 0; }
  /// q-error = max(est/actual, actual/est) with one-row floors; 0 when the
  /// decision has no estimate or no actual.
  double QError() const;
  std::string ToString() const;
};

/// Append-only per-query log of PlanDecisions. Record() returns the
/// decision id so the optimizer can SetActual() it after materialization.
class DecisionLog {
 public:
  int Record(PlanDecision decision);
  void SetActual(int id, double rows);

  const std::vector<PlanDecision>& decisions() const { return decisions_; }
  size_t NumWithActuals() const;
  /// Worst QError() over decisions with actuals (0 when there are none).
  double MaxQError() const;
  /// Geometric mean of QError() over decisions with actuals (1.0 when
  /// there are none) — the calibrated "how wrong have we been so far this
  /// query" factor the feedback loop widens confidence intervals by.
  double GeoMeanQError() const;
  std::string ToString() const;

 private:
  std::vector<PlanDecision> decisions_;
};

/// Canonical key for a join subtree: its sorted alias set joined with '+'.
/// Used to attach actual materialized cardinalities to plan-tree nodes.
std::string SubtreeKey(const std::set<std::string>& aliases);

/// Everything observed about one optimizer run: the decision log, the
/// actual cardinality of every materialized subtree, the final metrics and
/// (when tracing was enabled) the drained span timeline. Attached to
/// OptimizerRunResult::profile and rendered by ExplainAnalyze().
struct QueryProfile {
  std::string optimizer;  // "dynamic", "cost-based", ...
  DecisionLog decisions;
  /// SubtreeKey -> actual materialized row count. Single-alias keys are
  /// filtered base tables (predicate push-down sinks).
  std::map<std::string, uint64_t> subtree_actual_rows;
  ExecMetrics metrics;
  std::vector<TraceEvent> trace;
  /// Introspection-plane annotations, filled by IntrospectionRun::Complete
  /// (opt/profile_archive.h) and empty when introspection is off — the
  /// ExplainAnalyze sections they feed only render when non-empty, keeping
  /// the default output byte-identical.
  std::string fingerprint;      ///< canonical QuerySpec fingerprint (hex)
  std::string critical_path;    ///< dominant sim-seconds span chain
  std::string regression_note;  ///< non-empty when a plan regression fired
};

class MetricsRegistry;

/// Standard optimizer epilogue: folds the decision log into
/// `metrics->max_q_error`/`num_decisions`, snapshots `*metrics` into the
/// profile, ends `query_span` annotated with simulated seconds, and drains
/// the tracer timeline into the profile when tracing is enabled.
/// `registry` receives the estimation-quality telemetry; null falls back
/// to MetricsRegistry::Global().
void FinalizeProfile(QueryProfile* profile, ExecMetrics* metrics,
                     TraceSpan* query_span,
                     MetricsRegistry* registry = nullptr);

}  // namespace dynopt

#endif  // DYNOPT_OPT_DECISION_LOG_H_
