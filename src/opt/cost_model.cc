#include "opt/cost_model.h"

namespace dynopt {

double EstimateScanCost(double bytes, double rows,
                        const ClusterConfig& cluster, bool is_intermediate) {
  const double n = static_cast<double>(cluster.num_nodes);
  const double per_byte = is_intermediate ? cluster.disk_read_seconds_per_byte
                                          : cluster.scan_seconds_per_byte;
  return (bytes / n) * per_byte + (rows / n) * cluster.cpu_seconds_per_tuple;
}

double EstimateJoinExecCost(JoinMethod method, const JoinCostInputs& in,
                            const ClusterConfig& cluster,
                            double probe_scan_bytes) {
  const double n = static_cast<double>(cluster.num_nodes);
  const double cpu = cluster.cpu_seconds_per_tuple;
  switch (method) {
    case JoinMethod::kHashShuffle: {
      // Both sides re-partitioned; a node receives ~1/n of each side.
      double net = ((in.build_bytes + in.probe_bytes) / n) *
                   cluster.network_seconds_per_byte;
      double work =
          ((in.build_rows + in.probe_rows + in.out_rows) / n) * cpu;
      return net + work;
    }
    case JoinMethod::kBroadcast: {
      // Every node receives the whole build side and builds a full hash
      // table over it; the probe side never moves.
      double net = in.build_bytes * cluster.network_seconds_per_byte;
      double work =
          in.build_rows * cpu + ((in.probe_rows + in.out_rows) / n) * cpu;
      return net + work;
    }
    case JoinMethod::kIndexNestedLoop: {
      // The outer (build) side is broadcast; every node probes its local
      // index once per outer row; only matched inner bytes are read —
      // and the inner side's scan cost is avoided entirely, so subtract
      // the scan the probe side would otherwise pay.
      double net = in.build_bytes * cluster.network_seconds_per_byte;
      double lookups = in.build_rows * cluster.index_lookup_seconds;
      double matched_read =
          (in.out_bytes / n) * cluster.disk_read_seconds_per_byte;
      double saved_scan = (probe_scan_bytes / n) * cluster.scan_seconds_per_byte +
                          (in.probe_rows / n) * cpu;
      return net + lookups + matched_read + (in.out_rows / n) * cpu -
             saved_scan;
    }
  }
  return 0.0;
}

}  // namespace dynopt
