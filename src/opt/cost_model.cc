#include "opt/cost_model.h"

#include <algorithm>
#include <cmath>

namespace dynopt {

namespace {

/// Grace-join spill charge for one join whose per-node resident build share
/// is `node_build_bytes` against `in.memory_budget_bytes`, mirroring
/// JobExecutor::GraceJoinPartition: each recursion level whose build share
/// still exceeds the budget re-partitions every row of the pair (CPU) and
/// writes + reads back every pair byte once (disk rates); a fanout-way
/// split shrinks the build share per level; recursion caps at
/// max_spill_recursion, after which the executor joins in memory over
/// budget (no further passes charged). `node_pair_bytes`/`node_pair_rows`
/// are the per-node build+probe volume each pass rewrites.
void AddSpillCharge(const JoinCostInputs& in, const ClusterConfig& cluster,
                    double node_build_bytes, double node_pair_bytes,
                    double node_pair_rows, JoinCostBreakdown* out) {
  const double budget = static_cast<double>(in.memory_budget_bytes);
  if (budget <= 0 || node_build_bytes <= budget) return;
  const double fanout =
      static_cast<double>(std::max(2, cluster.memory.max_spill_fanout));
  int passes = 0;
  double share = node_build_bytes;
  while (share > budget && passes < cluster.memory.max_spill_recursion) {
    ++passes;
    share /= fanout;
  }
  if (passes == 0) return;
  const double per_pass_seconds =
      node_pair_bytes * (cluster.disk_write_seconds_per_byte +
                         cluster.disk_read_seconds_per_byte) +
      node_pair_rows * cluster.cpu_seconds_per_tuple;
  out->spill_passes = passes;
  out->spill_seconds = static_cast<double>(passes) * per_pass_seconds;
  // spilled_bytes sums over nodes (the executor's counter does); every
  // node spills its whole pair once per pass.
  out->spilled_bytes = static_cast<double>(passes) * node_pair_bytes *
                       static_cast<double>(cluster.num_nodes);
  out->cost += out->spill_seconds;
}

}  // namespace

double EstimateScanCost(double bytes, double rows,
                        const ClusterConfig& cluster, bool is_intermediate) {
  const double n = static_cast<double>(cluster.num_nodes);
  const double per_byte = is_intermediate ? cluster.disk_read_seconds_per_byte
                                          : cluster.scan_seconds_per_byte;
  return (bytes / n) * per_byte + (rows / n) * cluster.cpu_seconds_per_tuple;
}

double EstimateResidentBytes(double bytes, const ClusterConfig& cluster) {
  const uint64_t budget = cluster.memory.join_memory_budget_bytes;
  if (budget == 0) return bytes;
  const double cap = static_cast<double>(budget) *
                     static_cast<double>(cluster.num_nodes);
  return std::min(bytes, cap);
}

JoinCostBreakdown EstimateJoinExecCostDetail(JoinMethod method,
                                             const JoinCostInputs& in,
                                             const ClusterConfig& cluster,
                                             double probe_scan_bytes) {
  const double n = static_cast<double>(cluster.num_nodes);
  const double cpu = cluster.cpu_seconds_per_tuple;
  JoinCostBreakdown out;
  switch (method) {
    case JoinMethod::kHashShuffle: {
      // Both sides re-partitioned; a node receives ~1/n of each side.
      double net = ((in.build_bytes + in.probe_bytes) / n) *
                   cluster.network_seconds_per_byte;
      double work =
          ((in.build_rows + in.probe_rows + in.out_rows) / n) * cpu;
      out.cost = net + work;
      AddSpillCharge(in, cluster, in.build_bytes / n,
                     (in.build_bytes + in.probe_bytes) / n,
                     (in.build_rows + in.probe_rows) / n, &out);
      return out;
    }
    case JoinMethod::kBroadcast: {
      // Every node receives the whole build side and builds a full hash
      // table over it; the probe side never moves.
      double net = in.build_bytes * cluster.network_seconds_per_byte;
      double work =
          in.build_rows * cpu + ((in.probe_rows + in.out_rows) / n) * cpu;
      out.cost = net + work;
      // Each node holds the *full* build side — a tight budget makes the
      // replicated build spill at every node, which is the cliff that
      // flips the broadcast-vs-shuffle choice under spill-aware costing.
      AddSpillCharge(in, cluster, in.build_bytes,
                     in.build_bytes + in.probe_bytes / n,
                     in.build_rows + in.probe_rows / n, &out);
      return out;
    }
    case JoinMethod::kIndexNestedLoop: {
      // The outer (build) side is broadcast; every node probes its local
      // index once per outer row; only matched inner bytes are read —
      // and the inner side's scan cost is avoided entirely, so subtract
      // the scan the probe side would otherwise pay. No hash table is
      // built, so the grace-join spill path never applies.
      double net = in.build_bytes * cluster.network_seconds_per_byte;
      double lookups = in.build_rows * cluster.index_lookup_seconds;
      double matched_read =
          (in.out_bytes / n) * cluster.disk_read_seconds_per_byte;
      double saved_scan = (probe_scan_bytes / n) * cluster.scan_seconds_per_byte +
                          (in.probe_rows / n) * cpu;
      out.cost = net + lookups + matched_read + (in.out_rows / n) * cpu -
                 saved_scan;
      return out;
    }
  }
  return out;
}

double EstimateJoinExecCost(JoinMethod method, const JoinCostInputs& in,
                            const ClusterConfig& cluster,
                            double probe_scan_bytes) {
  return EstimateJoinExecCostDetail(method, in, cluster, probe_scan_bytes)
      .cost;
}

}  // namespace dynopt
