#ifndef DYNOPT_OPT_STATIC_OPTIMIZER_H_
#define DYNOPT_OPT_STATIC_OPTIMIZER_H_

#include <memory>
#include <string>

#include "exec/engine.h"
#include "opt/optimizer.h"
#include "opt/planner.h"

namespace dynopt {

/// Traditional System-R style static cost-based optimization, the paper's
/// main baseline: using only load-time statistics on the base datasets, it
/// enumerates join orders with dynamic programming (bushy trees allowed),
/// estimates filter selectivities under the independence assumption (with
/// Selinger defaults for UDFs/parameters — the blindness the dynamic
/// approach removes), costs each plan under the cluster cost model, and
/// executes the single winning plan with no re-optimization.
class StaticCostBasedOptimizer : public Optimizer {
 public:
  explicit StaticCostBasedOptimizer(
      Engine* engine, const PlannerOptions& options = PlannerOptions());

  std::string name() const override { return "cost-based"; }
  Result<OptimizerRunResult> Run(const QuerySpec& query) override;

  /// Plans without executing (exposed for tests and pilot-run reuse).
  /// Produces the minimum-cost join tree for `spec` under `view`'s stats.
  /// Non-null `est_rows`/`est_cost` receive the winning plan's estimated
  /// output cardinality and total plan cost (decision-log inputs).
  /// A non-null `risk` widens subset size estimates while costing
  /// (pessimistic-bound DP): leaf subsets by their alias factor, composite
  /// subsets additionally by the global factor; reported est_rows stay the
  /// expected values. Null or neutral risk reproduces historical plans
  /// exactly.
  static Result<std::shared_ptr<const JoinTree>> PlanWithDp(
      const QuerySpec& spec, const StatsView& view,
      const ClusterConfig& cluster, const PlannerOptions& options,
      double* est_rows = nullptr, double* est_cost = nullptr,
      const SelectivityRisk* risk = nullptr);

 private:
  Engine* engine_;
  PlannerOptions options_;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_STATIC_OPTIMIZER_H_
