#ifndef DYNOPT_OPT_INGRES_OPTIMIZER_H_
#define DYNOPT_OPT_INGRES_OPTIMIZER_H_

#include <string>

#include "exec/engine.h"
#include "opt/dynamic_optimizer.h"
#include "opt/optimizer.h"

namespace dynopt {

/// The paper's INGRES-like baseline [33]: the same decomposition loop as
/// the dynamic optimizer — every dataset with local predicates becomes a
/// single-variable subquery, joins run one at a time with intermediate
/// materialization — but the choice of the next subquery is based *only on
/// dataset cardinalities*: no distinct-count sketches or histograms are
/// collected or consulted, so the formula-(1) result estimation degrades to
/// a size-only proxy and the planner often forms a less efficient tree.
class IngresLikeOptimizer : public Optimizer {
 public:
  explicit IngresLikeOptimizer(Engine* engine,
                               const PlannerOptions& options = PlannerOptions());

  std::string name() const override { return "ingres-like"; }
  Result<OptimizerRunResult> Run(const QuerySpec& query) override;

  /// Cancellation/deadline checks happen inside the wrapped dynamic
  /// optimizer's decomposition loop, so forward the context there too.
  void set_context(QueryContext* ctx) override {
    Optimizer::set_context(ctx);
    inner_.set_context(ctx);
  }

  /// Decomposition materializes every intermediate, so the wrapped dynamic
  /// optimizer's checkpoints work unchanged here.
  bool CanResume() const override { return inner_.CanResume(); }
  Result<OptimizerRunResult> ResumeFromLastCheckpoint() override {
    return inner_.ResumeFromLastCheckpoint();
  }

 private:
  DynamicOptimizer inner_;
};

}  // namespace dynopt

#endif  // DYNOPT_OPT_INGRES_OPTIMIZER_H_
