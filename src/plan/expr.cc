#include "plan/expr.h"

#include <sstream>

#include "plan/udf.h"

namespace dynopt {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ComparisonExpr::ToString() const {
  return left_->ToString() + " " + CompareOpName(op_) + " " +
         right_->ToString();
}

std::string BetweenExpr::ToString() const {
  return input_->ToString() + " BETWEEN " + lo_->ToString() + " AND " +
         hi_->ToString();
}

namespace {
std::string JoinChildren(const std::vector<ExprPtr>& children,
                         const char* sep) {
  std::ostringstream os;
  for (size_t i = 0; i < children.size(); ++i) {
    if (i > 0) os << sep;
    os << "(" << children[i]->ToString() << ")";
  }
  return os.str();
}
}  // namespace

std::string AndExpr::ToString() const {
  return JoinChildren(children_, " AND ");
}

std::string OrExpr::ToString() const { return JoinChildren(children_, " OR "); }

std::string UdfCallExpr::ToString() const {
  std::ostringstream os;
  os << name_ << "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) os << ", ";
    os << args_[i]->ToString();
  }
  os << ")";
  return os.str();
}

ExprPtr Col(std::string alias, std::string column) {
  return std::make_shared<ColumnRefExpr>(std::move(alias), std::move(column));
}
ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Param(std::string name) {
  return std::make_shared<ParamExpr>(std::move(name));
}
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<ComparisonExpr>(op, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Cmp(CompareOp::kEq, std::move(l), std::move(r));
}
ExprPtr Between(ExprPtr in, ExprPtr lo, ExprPtr hi) {
  return std::make_shared<BetweenExpr>(std::move(in), std::move(lo),
                                       std::move(hi));
}
ExprPtr And(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<AndExpr>(std::move(children));
}
ExprPtr Or(std::vector<ExprPtr> children) {
  if (children.size() == 1) return children[0];
  return std::make_shared<OrExpr>(std::move(children));
}
ExprPtr Not(ExprPtr child) { return std::make_shared<NotExpr>(std::move(child)); }
ExprPtr Udf(std::string name, std::vector<ExprPtr> args) {
  return std::make_shared<UdfCallExpr>(std::move(name), std::move(args));
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> out;
  if (!expr) return out;
  if (expr->kind() == ExprKind::kAnd) {
    const auto& and_expr = static_cast<const AndExpr&>(*expr);
    for (const auto& child : and_expr.children()) {
      auto nested = SplitConjuncts(child);
      out.insert(out.end(), nested.begin(), nested.end());
    }
  } else {
    out.push_back(expr);
  }
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  if (conjuncts.size() == 1) return conjuncts[0];
  return And(std::move(conjuncts));
}

bool BoundExpr::EvalBool(const Row& row) const {
  Value v = Eval(row);
  if (v.is_null()) return false;
  switch (v.type()) {
    case ValueType::kBool:
      return v.AsBool();
    case ValueType::kInt64:
      return v.AsInt64() != 0;
    case ValueType::kDouble:
      return v.AsDouble() != 0.0;
    default:
      return false;
  }
}

namespace {

class BoundColumn : public BoundExpr {
 public:
  explicit BoundColumn(int slot) : slot_(slot) {}
  Value Eval(const Row& row) const override {
    return row[static_cast<size_t>(slot_)];
  }

 private:
  int slot_;
};

class BoundLiteral : public BoundExpr {
 public:
  explicit BoundLiteral(Value v) : value_(std::move(v)) {}
  Value Eval(const Row&) const override { return value_; }

 private:
  Value value_;
};

class BoundComparison : public BoundExpr {
 public:
  BoundComparison(CompareOp op, BoundExprPtr l, BoundExprPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}
  Value Eval(const Row& row) const override {
    Value l = left_->Eval(row);
    Value r = right_->Eval(row);
    if (l.is_null() || r.is_null()) return Value::Null();
    int c = l.Compare(r);
    bool result = false;
    switch (op_) {
      case CompareOp::kEq:
        result = c == 0;
        break;
      case CompareOp::kNe:
        result = c != 0;
        break;
      case CompareOp::kLt:
        result = c < 0;
        break;
      case CompareOp::kLe:
        result = c <= 0;
        break;
      case CompareOp::kGt:
        result = c > 0;
        break;
      case CompareOp::kGe:
        result = c >= 0;
        break;
    }
    return Value(result);
  }

 private:
  CompareOp op_;
  BoundExprPtr left_;
  BoundExprPtr right_;
};

class BoundBetween : public BoundExpr {
 public:
  BoundBetween(BoundExprPtr in, BoundExprPtr lo, BoundExprPtr hi)
      : input_(std::move(in)), lo_(std::move(lo)), hi_(std::move(hi)) {}
  Value Eval(const Row& row) const override {
    Value v = input_->Eval(row);
    Value lo = lo_->Eval(row);
    Value hi = hi_->Eval(row);
    if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
    return Value(v >= lo && v <= hi);
  }

 private:
  BoundExprPtr input_;
  BoundExprPtr lo_;
  BoundExprPtr hi_;
};

class BoundAnd : public BoundExpr {
 public:
  explicit BoundAnd(std::vector<BoundExprPtr> children)
      : children_(std::move(children)) {}
  Value Eval(const Row& row) const override {
    for (const auto& child : children_) {
      if (!child->EvalBool(row)) return Value(false);
    }
    return Value(true);
  }

 private:
  std::vector<BoundExprPtr> children_;
};

class BoundOr : public BoundExpr {
 public:
  explicit BoundOr(std::vector<BoundExprPtr> children)
      : children_(std::move(children)) {}
  Value Eval(const Row& row) const override {
    for (const auto& child : children_) {
      if (child->EvalBool(row)) return Value(true);
    }
    return Value(false);
  }

 private:
  std::vector<BoundExprPtr> children_;
};

class BoundNot : public BoundExpr {
 public:
  explicit BoundNot(BoundExprPtr child) : child_(std::move(child)) {}
  Value Eval(const Row& row) const override {
    return Value(!child_->EvalBool(row));
  }

 private:
  BoundExprPtr child_;
};

class BoundUdf : public BoundExpr {
 public:
  BoundUdf(const UdfFn* fn, std::vector<BoundExprPtr> args)
      : fn_(fn), args_(std::move(args)) {}
  Value Eval(const Row& row) const override {
    std::vector<Value> values;
    values.reserve(args_.size());
    for (const auto& arg : args_) values.push_back(arg->Eval(row));
    return (*fn_)(values);
  }

 private:
  const UdfFn* fn_;
  std::vector<BoundExprPtr> args_;
};

}  // namespace

Result<BoundExprPtr> Bind(const ExprPtr& expr, const BindContext& ctx) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const ColumnRefExpr&>(*expr);
      int slot = ctx.resolve_column ? ctx.resolve_column(col.Qualified()) : -1;
      if (slot < 0) {
        return Status::BindError("unresolved column " + col.Qualified());
      }
      return BoundExprPtr(new BoundColumn(slot));
    }
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(*expr);
      return BoundExprPtr(new BoundLiteral(lit.value()));
    }
    case ExprKind::kParam: {
      const auto& param = static_cast<const ParamExpr&>(*expr);
      if (ctx.params == nullptr) {
        return Status::BindError("no parameters provided for $" +
                                 param.name());
      }
      auto it = ctx.params->find(param.name());
      if (it == ctx.params->end()) {
        return Status::BindError("unbound parameter $" + param.name());
      }
      return BoundExprPtr(new BoundLiteral(it->second));
    }
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*expr);
      DYNOPT_ASSIGN_OR_RETURN(BoundExprPtr l, Bind(cmp.left(), ctx));
      DYNOPT_ASSIGN_OR_RETURN(BoundExprPtr r, Bind(cmp.right(), ctx));
      return BoundExprPtr(
          new BoundComparison(cmp.op(), std::move(l), std::move(r)));
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(*expr);
      DYNOPT_ASSIGN_OR_RETURN(BoundExprPtr in, Bind(between.input(), ctx));
      DYNOPT_ASSIGN_OR_RETURN(BoundExprPtr lo, Bind(between.lo(), ctx));
      DYNOPT_ASSIGN_OR_RETURN(BoundExprPtr hi, Bind(between.hi(), ctx));
      return BoundExprPtr(
          new BoundBetween(std::move(in), std::move(lo), std::move(hi)));
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const std::vector<ExprPtr>& children =
          expr->kind() == ExprKind::kAnd
              ? static_cast<const AndExpr&>(*expr).children()
              : static_cast<const OrExpr&>(*expr).children();
      std::vector<BoundExprPtr> bound;
      bound.reserve(children.size());
      for (const auto& child : children) {
        DYNOPT_ASSIGN_OR_RETURN(BoundExprPtr b, Bind(child, ctx));
        bound.push_back(std::move(b));
      }
      if (expr->kind() == ExprKind::kAnd) {
        return BoundExprPtr(new BoundAnd(std::move(bound)));
      }
      return BoundExprPtr(new BoundOr(std::move(bound)));
    }
    case ExprKind::kNot: {
      const auto& not_expr = static_cast<const NotExpr&>(*expr);
      DYNOPT_ASSIGN_OR_RETURN(BoundExprPtr child, Bind(not_expr.child(), ctx));
      return BoundExprPtr(new BoundNot(std::move(child)));
    }
    case ExprKind::kUdfCall: {
      const auto& udf = static_cast<const UdfCallExpr&>(*expr);
      if (ctx.udfs == nullptr) {
        return Status::BindError("no UDF registry provided for " + udf.name());
      }
      const UdfFn* fn = ctx.udfs->Lookup(udf.name());
      if (fn == nullptr) {
        return Status::BindError("unregistered UDF " + udf.name());
      }
      std::vector<BoundExprPtr> args;
      args.reserve(udf.args().size());
      for (const auto& arg : udf.args()) {
        DYNOPT_ASSIGN_OR_RETURN(BoundExprPtr b, Bind(arg, ctx));
        args.push_back(std::move(b));
      }
      return BoundExprPtr(new BoundUdf(fn, std::move(args)));
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace dynopt
