#ifndef DYNOPT_PLAN_QUERY_SPEC_H_
#define DYNOPT_PLAN_QUERY_SPEC_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "plan/expr.h"

namespace dynopt {

/// One entry of the FROM clause: either a base dataset under a query alias,
/// or — after a re-optimization point has materialized a join result — an
/// intermediate dataset. Intermediates keep the original qualified column
/// names of their inputs ("ss.ss_item_sk", ...), recorded in
/// `provided_columns`, so the rest of the query needs no renaming when it
/// is reconstructed around them (Section 5.4 of the paper).
struct TableRef {
  std::string table;  ///< Catalog name (base table or materialized temp).
  std::string alias;  ///< Unique within the query.
  bool is_intermediate = false;
  /// True when this dataset is (or was, before push-down) restricted by
  /// local predicates — one of the paper's preconditions for choosing the
  /// indexed nested loop join on a pk/fk join.
  bool filtered = false;
  std::vector<std::string> provided_columns;  ///< Only for intermediates.

  /// True when this ref supplies the qualified column `name`.
  bool Provides(const std::string& name) const;
};

/// A selection predicate local to a single dataset.
struct LocalPredicate {
  std::string alias;
  ExprPtr expr;
};

/// Aggregate functions supported in the SELECT list.
enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

const char* AggFnName(AggFn fn);

/// One aggregate of the SELECT list, e.g. SUM(ss.ss_quantity).
struct AggregateSpec {
  AggFn fn = AggFn::kCount;
  std::string input;        ///< Qualified input column.
  std::string output_name;  ///< Name in the result schema.
};

/// One ORDER BY key, referencing an output column (a GROUP BY column or an
/// aggregate's output name).
struct OrderKey {
  std::string column;
  bool descending = false;
};

/// An equi-join between two FROM entries, possibly on a composite key
/// (Q17/Q50 join store_sales with store_returns on three columns).
/// `keys[i].first` is provided by `left_alias`, `.second` by `right_alias`.
struct JoinEdge {
  std::string left_alias;
  std::string right_alias;
  std::vector<std::pair<std::string, std::string>> keys;

  bool Involves(const std::string& alias) const {
    return alias == left_alias || alias == right_alias;
  }
  const std::string& Other(const std::string& alias) const {
    return alias == left_alias ? right_alias : left_alias;
  }
  /// Key columns on `alias`'s side.
  std::vector<std::string> KeysOf(const std::string& alias) const;

  std::string ToString() const;
};

/// The logical select-project-join query the optimizers operate on: the
/// output of the SQL binder, and the object the dynamic optimizer rewrites
/// at every re-optimization point.
struct QuerySpec {
  std::vector<TableRef> tables;
  std::vector<LocalPredicate> predicates;
  std::vector<JoinEdge> joins;
  std::vector<std::string> projections;  ///< Qualified column names.
  std::map<std::string, Value> params;   ///< Parameter bindings.

  // Post-join processing (evaluated after all joins and selections with
  // traditional optimization, per Section 6.4 of the paper).
  std::vector<std::string> group_by;     ///< Qualified input columns.
  std::vector<AggregateSpec> aggregates;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;  ///< Negative = no limit.

  /// True when any group-by / aggregate / order-by / limit is present.
  bool HasPostProcessing() const {
    return !group_by.empty() || !aggregates.empty() || !order_by.empty() ||
           limit >= 0;
  }

  /// Names of the final result columns: projections when no aggregation,
  /// otherwise group-by columns followed by aggregate output names.
  std::vector<std::string> OutputColumns() const;
  /// Original alias -> base table, surviving reconstruction, so statistics
  /// of intermediate columns (which keep their original qualified names)
  /// can fall back to load-time base-table sketches when online collection
  /// was skipped. Maintained by NormalizeJoins().
  std::map<std::string, std::string> base_tables;

  /// nullptr when no FROM entry has this alias.
  const TableRef* FindRef(const std::string& alias) const;
  TableRef* FindRef(const std::string& alias);

  /// All local predicate expressions attached to `alias`.
  std::vector<ExprPtr> PredicatesFor(const std::string& alias) const;

  /// Alias of the FROM entry providing qualified column `name`; empty when
  /// unknown.
  std::string ProviderOf(const std::string& name) const;

  /// Merges duplicate join edges between the same alias pair into one
  /// composite-key edge (canonical form expected by the planner).
  void NormalizeJoins();

  /// Structural checks: unique aliases, resolvable join keys/projections,
  /// connected join graph. Returns the first violation found.
  Status Validate() const;

  std::string ToString() const;
};

}  // namespace dynopt

#endif  // DYNOPT_PLAN_QUERY_SPEC_H_
