#ifndef DYNOPT_PLAN_EXPR_H_
#define DYNOPT_PLAN_EXPR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace dynopt {

class ColumnRefExpr;
class UdfRegistry;

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kParam,
  kComparison,
  kBetween,
  kAnd,
  kOr,
  kNot,
  kUdfCall,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// Immutable scalar-expression tree used for WHERE-clause predicates.
/// Expressions are built by the SQL binder (or directly by tests/examples),
/// analyzed by the optimizer for selectivity, and compiled to BoundExpr for
/// row-at-a-time evaluation.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual ExprKind kind() const = 0;
  virtual std::string ToString() const = 0;
  /// Appends every column reference in the subtree to `out`.
  virtual void CollectColumns(
      std::vector<const ColumnRefExpr*>* out) const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

/// Reference to `alias.column` (alias may be empty for pre-qualified
/// names, e.g. columns of intermediate datasets which already carry their
/// original qualification).
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string alias, std::string column)
      : alias_(std::move(alias)), column_(std::move(column)) {}

  ExprKind kind() const override { return ExprKind::kColumnRef; }
  std::string ToString() const override { return Qualified(); }
  void CollectColumns(std::vector<const ColumnRefExpr*>* out) const override {
    out->push_back(this);
  }

  const std::string& alias() const { return alias_; }
  const std::string& column() const { return column_; }
  std::string Qualified() const {
    return alias_.empty() ? column_ : alias_ + "." + column_;
  }

 private:
  std::string alias_;
  std::string column_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  ExprKind kind() const override { return ExprKind::kLiteral; }
  std::string ToString() const override { return value_.ToString(); }
  void CollectColumns(std::vector<const ColumnRefExpr*>*) const override {}
  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Named query parameter (`$name`): its value is only known at execution
/// time, so a static optimizer cannot estimate its selectivity — one of the
/// three blindness scenarios the paper targets.
class ParamExpr : public Expr {
 public:
  explicit ParamExpr(std::string name) : name_(std::move(name)) {}
  ExprKind kind() const override { return ExprKind::kParam; }
  std::string ToString() const override { return "$" + name_; }
  void CollectColumns(std::vector<const ColumnRefExpr*>*) const override {}
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  ExprKind kind() const override { return ExprKind::kComparison; }
  std::string ToString() const override;
  void CollectColumns(std::vector<const ColumnRefExpr*>* out) const override {
    left_->CollectColumns(out);
    right_->CollectColumns(out);
  }
  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class BetweenExpr : public Expr {
 public:
  BetweenExpr(ExprPtr input, ExprPtr lo, ExprPtr hi)
      : input_(std::move(input)), lo_(std::move(lo)), hi_(std::move(hi)) {}
  ExprKind kind() const override { return ExprKind::kBetween; }
  std::string ToString() const override;
  void CollectColumns(std::vector<const ColumnRefExpr*>* out) const override {
    input_->CollectColumns(out);
    lo_->CollectColumns(out);
    hi_->CollectColumns(out);
  }
  const ExprPtr& input() const { return input_; }
  const ExprPtr& lo() const { return lo_; }
  const ExprPtr& hi() const { return hi_; }

 private:
  ExprPtr input_;
  ExprPtr lo_;
  ExprPtr hi_;
};

class AndExpr : public Expr {
 public:
  explicit AndExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}
  ExprKind kind() const override { return ExprKind::kAnd; }
  std::string ToString() const override;
  void CollectColumns(std::vector<const ColumnRefExpr*>* out) const override {
    for (const auto& c : children_) c->CollectColumns(out);
  }
  const std::vector<ExprPtr>& children() const { return children_; }

 private:
  std::vector<ExprPtr> children_;
};

class OrExpr : public Expr {
 public:
  explicit OrExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}
  ExprKind kind() const override { return ExprKind::kOr; }
  std::string ToString() const override;
  void CollectColumns(std::vector<const ColumnRefExpr*>* out) const override {
    for (const auto& c : children_) c->CollectColumns(out);
  }
  const std::vector<ExprPtr>& children() const { return children_; }

 private:
  std::vector<ExprPtr> children_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}
  ExprKind kind() const override { return ExprKind::kNot; }
  std::string ToString() const override {
    return "NOT (" + child_->ToString() + ")";
  }
  void CollectColumns(std::vector<const ColumnRefExpr*>* out) const override {
    child_->CollectColumns(out);
  }
  const ExprPtr& child() const { return child_; }

 private:
  ExprPtr child_;
};

/// Call to a registered user-defined function, e.g. myyear(o_orderdate).
/// The optimizer treats UDFs as opaque (default selectivity); execution
/// evaluates them through the UdfRegistry.
class UdfCallExpr : public Expr {
 public:
  UdfCallExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  ExprKind kind() const override { return ExprKind::kUdfCall; }
  std::string ToString() const override;
  void CollectColumns(std::vector<const ColumnRefExpr*>* out) const override {
    for (const auto& a : args_) a->CollectColumns(out);
  }
  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

// --- Construction helpers (terse expression building in tests/workloads) --

ExprPtr Col(std::string alias, std::string column);
ExprPtr Lit(Value v);
ExprPtr Param(std::string name);
ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Between(ExprPtr in, ExprPtr lo, ExprPtr hi);
ExprPtr And(std::vector<ExprPtr> children);
ExprPtr Or(std::vector<ExprPtr> children);
ExprPtr Not(ExprPtr child);
ExprPtr Udf(std::string name, std::vector<ExprPtr> args);

/// Splits a conjunctive expression into its top-level conjuncts.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// Conjunction of `conjuncts` (nullptr when empty, the expr itself when 1).
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

// --- Bound (executable) expressions -------------------------------------

/// Compiled expression: column references resolved to row slots, parameters
/// substituted, UDFs resolved to callables. Evaluation is row-at-a-time.
class BoundExpr {
 public:
  virtual ~BoundExpr() = default;
  virtual Value Eval(const Row& row) const = 0;
  /// Boolean coercion: NULL and non-bool non-true values are false.
  bool EvalBool(const Row& row) const;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// Everything Bind() needs to resolve a tree.
struct BindContext {
  /// Maps a qualified column name to its row slot; returns -1 when unknown.
  std::function<int(const std::string&)> resolve_column;
  /// Parameter bindings; nullptr means "no parameters".
  const std::map<std::string, Value>* params = nullptr;
  /// UDF registry; nullptr means "no UDFs allowed".
  const UdfRegistry* udfs = nullptr;
};

/// Compiles `expr` against `ctx`; fails with kBindError on unresolvable
/// columns, unknown parameters or unregistered UDFs.
Result<BoundExprPtr> Bind(const ExprPtr& expr, const BindContext& ctx);

}  // namespace dynopt

#endif  // DYNOPT_PLAN_EXPR_H_
