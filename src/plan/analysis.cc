#include "plan/analysis.h"

namespace dynopt {

namespace {

void ScanForComplexity(const ExprPtr& expr, PredicateShape* shape) {
  switch (expr->kind()) {
    case ExprKind::kUdfCall:
      shape->has_udf = true;
      break;
    case ExprKind::kParam:
      shape->has_param = true;
      break;
    default:
      break;
  }
  switch (expr->kind()) {
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*expr);
      ScanForComplexity(cmp.left(), shape);
      ScanForComplexity(cmp.right(), shape);
      break;
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(*expr);
      ScanForComplexity(between.input(), shape);
      ScanForComplexity(between.lo(), shape);
      ScanForComplexity(between.hi(), shape);
      break;
    }
    case ExprKind::kAnd: {
      for (const auto& c : static_cast<const AndExpr&>(*expr).children()) {
        ScanForComplexity(c, shape);
      }
      break;
    }
    case ExprKind::kOr: {
      for (const auto& c : static_cast<const OrExpr&>(*expr).children()) {
        ScanForComplexity(c, shape);
      }
      break;
    }
    case ExprKind::kNot:
      ScanForComplexity(static_cast<const NotExpr&>(*expr).child(), shape);
      break;
    case ExprKind::kUdfCall: {
      for (const auto& a : static_cast<const UdfCallExpr&>(*expr).args()) {
        ScanForComplexity(a, shape);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

PredicateShape AnalyzePredicates(const std::vector<ExprPtr>& predicates) {
  PredicateShape shape;
  for (const auto& pred : predicates) {
    for (const auto& conjunct : SplitConjuncts(pred)) {
      ++shape.num_conjuncts;
      ScanForComplexity(conjunct, &shape);
    }
  }
  return shape;
}

std::optional<SimpleCondition> ExtractSimpleCondition(
    const ExprPtr& conjunct) {
  if (conjunct->kind() == ExprKind::kComparison) {
    const auto& cmp = static_cast<const ComparisonExpr&>(*conjunct);
    const Expr* column_side = nullptr;
    const Expr* literal_side = nullptr;
    CompareOp op = cmp.op();
    if (cmp.left()->kind() == ExprKind::kColumnRef &&
        cmp.right()->kind() == ExprKind::kLiteral) {
      column_side = cmp.left().get();
      literal_side = cmp.right().get();
    } else if (cmp.right()->kind() == ExprKind::kColumnRef &&
               cmp.left()->kind() == ExprKind::kLiteral) {
      column_side = cmp.right().get();
      literal_side = cmp.left().get();
      // Flip the operator: 5 < x  ==  x > 5.
      switch (op) {
        case CompareOp::kLt:
          op = CompareOp::kGt;
          break;
        case CompareOp::kLe:
          op = CompareOp::kGe;
          break;
        case CompareOp::kGt:
          op = CompareOp::kLt;
          break;
        case CompareOp::kGe:
          op = CompareOp::kLe;
          break;
        default:
          break;
      }
    } else {
      return std::nullopt;
    }
    SimpleCondition cond;
    cond.column =
        static_cast<const ColumnRefExpr*>(column_side)->Qualified();
    cond.op = op;
    cond.value = static_cast<const LiteralExpr*>(literal_side)->value();
    return cond;
  }
  if (conjunct->kind() == ExprKind::kBetween) {
    const auto& between = static_cast<const BetweenExpr&>(*conjunct);
    if (between.input()->kind() != ExprKind::kColumnRef ||
        between.lo()->kind() != ExprKind::kLiteral ||
        between.hi()->kind() != ExprKind::kLiteral) {
      return std::nullopt;
    }
    SimpleCondition cond;
    cond.column =
        static_cast<const ColumnRefExpr&>(*between.input()).Qualified();
    cond.is_between = true;
    cond.lo = static_cast<const LiteralExpr&>(*between.lo()).value();
    cond.hi = static_cast<const LiteralExpr&>(*between.hi()).value();
    return cond;
  }
  return std::nullopt;
}

}  // namespace dynopt
