#include "plan/query_spec.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace dynopt {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAvg:
      return "AVG";
  }
  return "?";
}

bool TableRef::Provides(const std::string& name) const {
  if (is_intermediate) {
    return std::find(provided_columns.begin(), provided_columns.end(),
                     name) != provided_columns.end();
  }
  // Base ref provides every column qualified with its alias.
  return name.size() > alias.size() + 1 &&
         name.compare(0, alias.size(), alias) == 0 &&
         name[alias.size()] == '.';
}

std::vector<std::string> JoinEdge::KeysOf(const std::string& alias) const {
  std::vector<std::string> out;
  out.reserve(keys.size());
  for (const auto& [l, r] : keys) {
    out.push_back(alias == left_alias ? l : r);
  }
  return out;
}

std::string JoinEdge::ToString() const {
  std::ostringstream os;
  os << left_alias << " JOIN " << right_alias << " ON ";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) os << " AND ";
    os << keys[i].first << " = " << keys[i].second;
  }
  return os.str();
}

const TableRef* QuerySpec::FindRef(const std::string& alias) const {
  for (const auto& ref : tables) {
    if (ref.alias == alias) return &ref;
  }
  return nullptr;
}

TableRef* QuerySpec::FindRef(const std::string& alias) {
  for (auto& ref : tables) {
    if (ref.alias == alias) return &ref;
  }
  return nullptr;
}

std::vector<ExprPtr> QuerySpec::PredicatesFor(const std::string& alias) const {
  std::vector<ExprPtr> out;
  for (const auto& pred : predicates) {
    if (pred.alias == alias) out.push_back(pred.expr);
  }
  return out;
}

std::string QuerySpec::ProviderOf(const std::string& name) const {
  for (const auto& ref : tables) {
    if (ref.Provides(name)) return ref.alias;
  }
  return "";
}

void QuerySpec::NormalizeJoins() {
  for (const auto& ref : tables) {
    if (!ref.is_intermediate) base_tables[ref.alias] = ref.table;
  }
  std::vector<JoinEdge> merged;
  for (const auto& edge : joins) {
    JoinEdge canonical = edge;
    // Canonical orientation: lexicographically smaller alias on the left.
    if (canonical.right_alias < canonical.left_alias) {
      std::swap(canonical.left_alias, canonical.right_alias);
      for (auto& [l, r] : canonical.keys) std::swap(l, r);
    }
    bool found = false;
    for (auto& existing : merged) {
      if (existing.left_alias == canonical.left_alias &&
          existing.right_alias == canonical.right_alias) {
        existing.keys.insert(existing.keys.end(), canonical.keys.begin(),
                             canonical.keys.end());
        found = true;
        break;
      }
    }
    if (!found) merged.push_back(std::move(canonical));
  }
  joins = std::move(merged);
}

std::vector<std::string> QuerySpec::OutputColumns() const {
  if (aggregates.empty()) return projections;
  std::vector<std::string> out = group_by;
  for (const auto& agg : aggregates) out.push_back(agg.output_name);
  return out;
}

Status QuerySpec::Validate() const {
  std::set<std::string> aliases;
  for (const auto& ref : tables) {
    if (ref.alias.empty()) {
      return Status::InvalidArgument("FROM entry with empty alias");
    }
    if (!aliases.insert(ref.alias).second) {
      return Status::InvalidArgument("duplicate alias " + ref.alias);
    }
  }
  for (const auto& pred : predicates) {
    if (aliases.count(pred.alias) == 0) {
      return Status::InvalidArgument("predicate on unknown alias " +
                                     pred.alias);
    }
    if (!pred.expr) {
      return Status::InvalidArgument("null predicate on " + pred.alias);
    }
  }
  for (const auto& edge : joins) {
    if (aliases.count(edge.left_alias) == 0 ||
        aliases.count(edge.right_alias) == 0) {
      return Status::InvalidArgument("join between unknown aliases: " +
                                     edge.ToString());
    }
    if (edge.left_alias == edge.right_alias) {
      return Status::InvalidArgument("self-join edge on one alias: " +
                                     edge.ToString());
    }
    if (edge.keys.empty()) {
      return Status::InvalidArgument("join edge without keys: " +
                                     edge.ToString());
    }
    const TableRef* left = FindRef(edge.left_alias);
    const TableRef* right = FindRef(edge.right_alias);
    for (const auto& [l, r] : edge.keys) {
      if (!left->Provides(l)) {
        return Status::InvalidArgument("join key " + l + " not provided by " +
                                       edge.left_alias);
      }
      if (!right->Provides(r)) {
        return Status::InvalidArgument("join key " + r + " not provided by " +
                                       edge.right_alias);
      }
    }
  }
  for (const auto& proj : projections) {
    if (ProviderOf(proj).empty()) {
      return Status::InvalidArgument("projection " + proj +
                                     " not provided by any FROM entry");
    }
  }
  // Post-processing references: group-by columns and aggregate inputs must
  // be part of the carried projections; order keys must name outputs.
  auto in_projections = [this](const std::string& name) {
    return std::find(projections.begin(), projections.end(), name) !=
           projections.end();
  };
  for (const auto& col : group_by) {
    if (!in_projections(col)) {
      return Status::InvalidArgument("GROUP BY column " + col +
                                     " not in the carried projections");
    }
  }
  for (const auto& agg : aggregates) {
    if (!in_projections(agg.input)) {
      return Status::InvalidArgument("aggregate input " + agg.input +
                                     " not in the carried projections");
    }
    if (agg.output_name.empty()) {
      return Status::InvalidArgument("aggregate without output name");
    }
  }
  std::vector<std::string> outputs = OutputColumns();
  for (const auto& key : order_by) {
    if (std::find(outputs.begin(), outputs.end(), key.column) ==
        outputs.end()) {
      return Status::InvalidArgument("ORDER BY column " + key.column +
                                     " is not an output column");
    }
  }
  // Join-graph connectivity (queries with cross products are out of scope,
  // as in the paper).
  if (tables.size() > 1) {
    std::set<std::string> reached;
    std::vector<std::string> frontier{tables[0].alias};
    reached.insert(tables[0].alias);
    while (!frontier.empty()) {
      std::string cur = frontier.back();
      frontier.pop_back();
      for (const auto& edge : joins) {
        if (!edge.Involves(cur)) continue;
        const std::string& other = edge.Other(cur);
        if (reached.insert(other).second) frontier.push_back(other);
      }
    }
    if (reached.size() != tables.size()) {
      return Status::InvalidArgument(
          "join graph is disconnected (cross products unsupported)");
    }
  }
  return Status::OK();
}

std::string QuerySpec::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  for (size_t i = 0; i < projections.size(); ++i) {
    if (i > 0) os << ", ";
    os << projections[i];
  }
  os << "\nFROM ";
  for (size_t i = 0; i < tables.size(); ++i) {
    if (i > 0) os << ", ";
    os << tables[i].table << " AS " << tables[i].alias;
    if (tables[i].is_intermediate) os << " /*intermediate*/";
  }
  bool first = true;
  for (const auto& pred : predicates) {
    os << (first ? "\nWHERE " : "\n  AND ") << pred.expr->ToString();
    first = false;
  }
  for (const auto& edge : joins) {
    for (const auto& [l, r] : edge.keys) {
      os << (first ? "\nWHERE " : "\n  AND ") << l << " = " << r;
      first = false;
    }
  }
  return os.str();
}

}  // namespace dynopt
