#ifndef DYNOPT_PLAN_UDF_H_
#define DYNOPT_PLAN_UDF_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace dynopt {

/// A user-defined scalar function. The engine evaluates these truthfully at
/// runtime while optimizers (other than the dynamic one, which executes
/// predicates early) must fall back to default selectivities — exactly the
/// asymmetry the paper's experiments exploit.
using UdfFn = std::function<Value(const std::vector<Value>&)>;

/// Named UDF registry. Workloads register `myyear`, `mysub`, `myrand`, etc.
/// before running queries.
class UdfRegistry {
 public:
  UdfRegistry() = default;

  Status Register(const std::string& name, UdfFn fn);
  /// nullptr when the UDF is unknown.
  const UdfFn* Lookup(const std::string& name) const;
  bool Has(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, UdfFn> fns_;
};

}  // namespace dynopt

#endif  // DYNOPT_PLAN_UDF_H_
