#ifndef DYNOPT_PLAN_ANALYSIS_H_
#define DYNOPT_PLAN_ANALYSIS_H_

#include <optional>
#include <string>
#include <vector>

#include "plan/expr.h"

namespace dynopt {

/// Classification of a dataset's local predicate set, driving the paper's
/// push-down rule (Algorithm 1 lines 6–9): predicates are executed early
/// when there is more than one of them, or at least one complex one (UDF or
/// parameterized value).
struct PredicateShape {
  int num_conjuncts = 0;
  bool has_udf = false;
  bool has_param = false;

  /// True when the paper's dynamic optimizer must push down and execute
  /// the predicates instead of estimating them.
  bool RequiresPushDown() const {
    return num_conjuncts > 1 || has_udf || has_param;
  }
};

/// Analyzes the conjunction of `predicates`.
PredicateShape AnalyzePredicates(const std::vector<ExprPtr>& predicates);

/// A single sargable condition `column op constant` (or BETWEEN two
/// constants), extractable from one conjunct; used for histogram-based
/// selectivity estimation of simple fixed-value predicates.
struct SimpleCondition {
  std::string column;  ///< Qualified column name.
  bool is_between = false;
  CompareOp op = CompareOp::kEq;  ///< When !is_between.
  Value value;                    ///< When !is_between.
  Value lo;                       ///< When is_between.
  Value hi;                       ///< When is_between.
};

/// Attempts to view `conjunct` as a simple condition. Returns nullopt for
/// anything involving UDFs, parameters, OR, or non-literal comparands.
std::optional<SimpleCondition> ExtractSimpleCondition(const ExprPtr& conjunct);

}  // namespace dynopt

#endif  // DYNOPT_PLAN_ANALYSIS_H_
