#include "plan/udf.h"

namespace dynopt {

Status UdfRegistry::Register(const std::string& name, UdfFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fns_.count(name) > 0) {
    return Status::AlreadyExists("UDF " + name + " already registered");
  }
  fns_[name] = std::move(fn);
  return Status::OK();
}

const UdfFn* UdfRegistry::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fns_.find(name);
  return it == fns_.end() ? nullptr : &it->second;
}

bool UdfRegistry::Has(const std::string& name) const {
  return Lookup(name) != nullptr;
}

}  // namespace dynopt
