#include "stats/hyperloglog.h"

#include <cmath>

#include "common/logging.h"

namespace dynopt {

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  DYNOPT_CHECK(precision >= 4 && precision <= 18);
  registers_.assign(static_cast<size_t>(1) << precision, 0);
}

void HyperLogLog::Add(uint64_t hash) {
  ++num_adds_;
  const uint64_t index = hash >> (64 - precision_);
  const uint64_t remaining = hash << precision_;
  // Rank = position of leftmost 1-bit in the remaining bits (1-based);
  // all-zero remainder gets the maximum rank.
  int rank;
  if (remaining == 0) {
    rank = 64 - precision_ + 1;
  } else {
    rank = __builtin_clzll(remaining) + 1;
  }
  auto& reg = registers_[index];
  if (rank > reg) reg = static_cast<uint8_t>(rank);
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) {
    alpha = 0.673;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  // Linear counting for the small-cardinality regime.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  DYNOPT_CHECK(precision_ == other.precision_);
  for (size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
  num_adds_ += other.num_adds_;
}

}  // namespace dynopt
