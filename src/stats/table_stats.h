#ifndef DYNOPT_STATS_TABLE_STATS_H_
#define DYNOPT_STATS_TABLE_STATS_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/value.h"
#include "stats/column_stats.h"

namespace dynopt {

/// Statistics for one (base or intermediate) dataset: row count, byte size
/// and per-column snapshots for the columns the optimizer cares about
/// (join keys and filtered columns — the paper collects "statistics for
/// every field of a dataset that may participate in any query", and online
/// only for "attributes that participate on subsequent join stages").
struct TableStats {
  uint64_t row_count = 0;
  uint64_t total_bytes = 0;
  std::map<std::string, ColumnStatsSnapshot> columns;

  bool HasColumn(const std::string& name) const {
    return columns.count(name) > 0;
  }
  /// Returns nullptr when the column was not collected.
  const ColumnStatsSnapshot* Column(const std::string& name) const;

  std::string ToString() const;
};

/// Streaming, mergeable builder for TableStats: feed rows, naming which row
/// slots correspond to which stat columns.
class TableStatsBuilder {
 public:
  /// `column_names[i]` is collected from row position `column_indices[i]`.
  TableStatsBuilder(std::vector<std::string> column_names,
                    std::vector<int> column_indices,
                    const StatsOptions& options = StatsOptions());

  void AddRow(const Row& row);
  void Merge(const TableStatsBuilder& other);
  TableStats Finalize() const;

  uint64_t row_count() const { return row_count_; }

 private:
  std::vector<std::string> column_names_;
  std::vector<int> column_indices_;
  uint64_t row_count_ = 0;
  uint64_t total_bytes_ = 0;
  std::vector<ColumnStatsBuilder> builders_;
};

/// Thread-safe registry mapping dataset name -> TableStats. This is the
/// "statistics collection framework" the optimizer consults; upfront stats
/// land here at load time and online stats at each re-optimization point.
class StatsManager {
 public:
  void Put(const std::string& table, TableStats stats);
  /// Returns nullptr when no stats exist for `table`.
  const TableStats* Get(const std::string& table) const;
  bool Has(const std::string& table) const;
  void Remove(const std::string& table);
  void Clear();

  std::vector<std::string> TableNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, TableStats> stats_;
};

}  // namespace dynopt

#endif  // DYNOPT_STATS_TABLE_STATS_H_
