#include "stats/column_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace dynopt {

double ColumnStatsSnapshot::EstimateEqSelectivity(const Value& v) const {
  if (count == 0 || ndv <= 0) return 0.1;  // Selinger default 1/10.
  if (!v.is_null() && !min_value.is_null() && !max_value.is_null()) {
    if (v < min_value || v > max_value) return 0.0;
  }
  return std::clamp(1.0 / ndv, 0.0, 1.0);
}

double ColumnStatsSnapshot::EstimateRangeSelectivity(const Value& lo,
                                                     const Value& hi) const {
  if (count == 0) return 1.0 / 3.0;
  double lo_key = lo.is_null() ? -std::numeric_limits<double>::infinity()
                               : lo.NumericKey();
  double hi_key = hi.is_null() ? std::numeric_limits<double>::infinity()
                               : hi.NumericKey();
  return histogram.EstimateRangeFraction(lo_key, hi_key);
}

std::string ColumnStatsSnapshot::ToString() const {
  std::ostringstream os;
  os << "count=" << count << " nulls=" << null_count << " ndv=" << ndv
     << " min=" << min_value.ToString() << " max=" << max_value.ToString();
  return os.str();
}

ColumnStatsBuilder::ColumnStatsBuilder(const StatsOptions& options)
    : options_(options),
      gk_(options.gk_epsilon),
      hll_(options.hll_precision) {}

void ColumnStatsBuilder::Add(const Value& v) {
  ++count_;
  if (v.is_null()) {
    ++null_count_;
    return;
  }
  if (min_value_.is_null() || v < min_value_) min_value_ = v;
  if (max_value_.is_null() || v > max_value_) max_value_ = v;
  hll_.Add(v.Hash());
  gk_.Insert(v.NumericKey());
}

void ColumnStatsBuilder::Merge(const ColumnStatsBuilder& other) {
  count_ += other.count_;
  null_count_ += other.null_count_;
  if (!other.min_value_.is_null() &&
      (min_value_.is_null() || other.min_value_ < min_value_)) {
    min_value_ = other.min_value_;
  }
  if (!other.max_value_.is_null() &&
      (max_value_.is_null() || other.max_value_ > max_value_)) {
    max_value_ = other.max_value_;
  }
  hll_.Merge(other.hll_);
  gk_.Merge(other.gk_);
}

ColumnStatsSnapshot ColumnStatsBuilder::Finalize() const {
  ColumnStatsSnapshot snap;
  snap.count = count_;
  snap.null_count = null_count_;
  const uint64_t non_null = count_ - null_count_;
  if (non_null > 0) {
    snap.ndv = std::min(hll_.Estimate(), static_cast<double>(non_null));
    snap.ndv = std::max(snap.ndv, 1.0);
  }
  snap.min_value = min_value_;
  snap.max_value = max_value_;
  snap.histogram =
      EquiHeightHistogram::FromSketch(gk_, options_.histogram_buckets);
  return snap;
}

}  // namespace dynopt
