#ifndef DYNOPT_STATS_COLUMN_STATS_H_
#define DYNOPT_STATS_COLUMN_STATS_H_

#include <string>

#include "common/value.h"
#include "stats/gk_quantile.h"
#include "stats/histogram.h"
#include "stats/hyperloglog.h"

namespace dynopt {

/// Tuning knobs for statistics collection (sketch resolution). The defaults
/// match the accuracy regime the paper relies on: fine enough that single
/// fixed-value range predicates estimate well, cheap enough that collection
/// is a small fraction of scan cost.
struct StatsOptions {
  double gk_epsilon = 0.005;
  int hll_precision = 12;
  int histogram_buckets = 64;
};

/// Finalized, immutable per-column statistics snapshot used by the
/// optimizer: distinct count (HLL), value range, and an equi-height
/// histogram for range selectivity.
struct ColumnStatsSnapshot {
  uint64_t count = 0;
  uint64_t null_count = 0;
  double ndv = 0.0;
  Value min_value;
  Value max_value;
  EquiHeightHistogram histogram;

  /// Selectivity of `column = v` among non-null values: 1/ndv (uniform
  /// within distinct values), clamped to [0, 1]. Out-of-range constants
  /// estimate ~0.
  double EstimateEqSelectivity(const Value& v) const;

  /// Selectivity of values in [lo, hi] (either side may be open: pass a
  /// null Value). Uses the histogram.
  double EstimateRangeSelectivity(const Value& lo, const Value& hi) const;

  std::string ToString() const;
};

/// Streaming accumulator for one column; mergeable across partitions.
class ColumnStatsBuilder {
 public:
  explicit ColumnStatsBuilder(const StatsOptions& options = StatsOptions());

  void Add(const Value& v);
  void Merge(const ColumnStatsBuilder& other);
  ColumnStatsSnapshot Finalize() const;

  uint64_t count() const { return count_; }

 private:
  StatsOptions options_;
  uint64_t count_ = 0;
  uint64_t null_count_ = 0;
  Value min_value_;
  Value max_value_;
  GkQuantileSketch gk_;
  HyperLogLog hll_;
};

}  // namespace dynopt

#endif  // DYNOPT_STATS_COLUMN_STATS_H_
