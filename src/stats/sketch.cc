#include "stats/sketch.h"

#include <algorithm>
#include <cmath>

namespace dynopt {

namespace {
constexpr uint64_t kBloomSalt = 0x71ee7f17e25a1d5bULL;
constexpr uint64_t kAgmsBucketSalt = 0xa0355bcb5e77d6a1ULL;
constexpr uint64_t kAgmsSignSalt = 0x51674a7b8f3c29e3ULL;
}  // namespace

// ---- BloomFilter --------------------------------------------------------

BloomFilter::BloomFilter(uint64_t expected_keys, double bits_per_key,
                         uint64_t seed)
    : seed_(seed) {
  if (bits_per_key < 1.0) bits_per_key = 1.0;
  // Optimal hash count for the budget; each function owns its own slice so
  // shards OR together and probes never collide across functions.
  num_hashes_ = static_cast<size_t>(bits_per_key * 0.69314718056 + 0.5);
  if (num_hashes_ < 1) num_hashes_ = 1;
  if (num_hashes_ > 30) num_hashes_ = 30;
  uint64_t total_bits =
      static_cast<uint64_t>(static_cast<double>(std::max<uint64_t>(
                                expected_keys, 1)) * bits_per_key) +
      num_hashes_;
  slice_bits_ = std::max<uint64_t>(64, total_bits / num_hashes_);
  // Round slices up to whole words so merging is pure word-wise OR.
  slice_bits_ = (slice_bits_ + 63) / 64 * 64;
  words_.assign(slice_bits_ / 64 * num_hashes_, 0);
}

void BloomFilter::Probe(uint64_t key_hash, uint64_t* slots) const {
  // Kirsch–Mitzenmacher double hashing: two derived hashes drive all k
  // probes, deterministically under the configured seed.
  const uint64_t h1 = SketchMix64(key_hash ^ seed_);
  const uint64_t h2 = SketchMix64(h1 ^ kBloomSalt) | 1;  // Odd: full cycle.
  uint64_t h = h1;
  for (size_t i = 0; i < num_hashes_; ++i) {
    slots[i] = i * slice_bits_ + (h % slice_bits_);
    h += h2;
  }
}

void BloomFilter::Insert(uint64_t key_hash) {
  uint64_t slots[32];
  Probe(key_hash, slots);
  for (size_t i = 0; i < num_hashes_; ++i) {
    words_[slots[i] >> 6] |= uint64_t{1} << (slots[i] & 63);
  }
  ++num_inserted_;
}

bool BloomFilter::MayContain(uint64_t key_hash) const {
  uint64_t slots[32];
  Probe(key_hash, slots);
  for (size_t i = 0; i < num_hashes_; ++i) {
    if ((words_[slots[i] >> 6] & (uint64_t{1} << (slots[i] & 63))) == 0) {
      return false;
    }
  }
  return true;
}

bool BloomFilter::MergeFrom(const BloomFilter& other) {
  if (slice_bits_ != other.slice_bits_ || num_hashes_ != other.num_hashes_ ||
      seed_ != other.seed_ || words_.size() != other.words_.size()) {
    return false;
  }
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  num_inserted_ += other.num_inserted_;
  return true;
}

// ---- FastAgmsSketch -----------------------------------------------------

FastAgmsSketch::FastAgmsSketch(const SketchOptions& options)
    : depth_(std::max<size_t>(1, options.agms_depth)),
      width_(std::max<size_t>(1, options.agms_width)),
      seed_(options.seed),
      counters_(depth_ * width_, 0) {}

void FastAgmsSketch::Update(uint64_t key_hash, int64_t count) {
  for (size_t d = 0; d < depth_; ++d) {
    // Per-row independent bucket + sign hashes, both derived from the key
    // hash and the row-salted seed.
    const uint64_t b = SketchMix64(key_hash ^ (seed_ + d * kAgmsBucketSalt));
    const uint64_t s = SketchMix64(b ^ kAgmsSignSalt);
    const int64_t sign = (s & 1) != 0 ? 1 : -1;
    counters_[d * width_ + b % width_] += sign * count;
  }
  total_count_ += static_cast<uint64_t>(count > 0 ? count : -count);
}

double FastAgmsSketch::JoinSizeEstimate(const FastAgmsSketch& other) const {
  if (!SameShape(other)) return -1.0;
  std::vector<double> rows(depth_);
  for (size_t d = 0; d < depth_; ++d) {
    double dot = 0;
    const int64_t* a = &counters_[d * width_];
    const int64_t* b = &other.counters_[d * width_];
    for (size_t w = 0; w < width_; ++w) {
      dot += static_cast<double>(a[w]) * static_cast<double>(b[w]);
    }
    rows[d] = dot;
  }
  std::sort(rows.begin(), rows.end());
  double median;
  if (depth_ % 2 == 1) {
    median = rows[depth_ / 2];
  } else {
    median = 0.5 * (rows[depth_ / 2 - 1] + rows[depth_ / 2]);
  }
  return std::max(0.0, median);
}

bool FastAgmsSketch::MergeFrom(const FastAgmsSketch& other) {
  if (!SameShape(other)) return false;
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_count_ += other.total_count_;
  return true;
}

// ---- SketchManager ------------------------------------------------------

void SketchManager::Put(const std::string& table, const std::string& column,
                        std::shared_ptr<const JoinKeySketch> sketch) {
  std::lock_guard<std::mutex> lock(mu_);
  sketches_[Key(table, column)] = std::move(sketch);
}

std::shared_ptr<const JoinKeySketch> SketchManager::Get(
    const std::string& table, const std::string& column) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sketches_.find(Key(table, column));
  return it == sketches_.end() ? nullptr : it->second;
}

bool SketchManager::Has(const std::string& table,
                        const std::string& column) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sketches_.count(Key(table, column)) > 0;
}

void SketchManager::RemoveTable(const std::string& table) {
  const std::string prefix = table + "|";
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = sketches_.lower_bound(prefix); it != sketches_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = sketches_.erase(it);
  }
}

void SketchManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sketches_.clear();
}

std::vector<std::string> SketchManager::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  keys.reserve(sketches_.size());
  for (const auto& [key, sketch] : sketches_) keys.push_back(key);
  return keys;
}

}  // namespace dynopt
