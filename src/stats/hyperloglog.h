#ifndef DYNOPT_STATS_HYPERLOGLOG_H_
#define DYNOPT_STATS_HYPERLOGLOG_H_

#include <cstdint>
#include <vector>

namespace dynopt {

/// HyperLogLog distinct-count sketch (Flajolet et al.), the paper's choice
/// for U(x.k) in the join-cardinality formula
///     |A join_k B| = S(A) * S(B) / max(U(A.k), U(B.k)).
///
/// Uses 2^precision 6-bit registers, the standard alpha_m bias constant and
/// linear-counting correction for small cardinalities. Sketches with equal
/// precision merge by register-wise max, so per-partition sketches combine
/// exactly as if the stream had been observed centrally.
class HyperLogLog {
 public:
  /// precision in [4, 18]; default 12 gives ~1.6% standard error.
  explicit HyperLogLog(int precision = 12);

  /// Adds an element identified by its 64-bit hash.
  void Add(uint64_t hash);

  /// Estimated number of distinct elements added.
  double Estimate() const;

  /// Register-wise max merge. Requires equal precision.
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }
  uint64_t num_adds() const { return num_adds_; }

 private:
  int precision_;
  uint64_t num_adds_ = 0;
  std::vector<uint8_t> registers_;
};

}  // namespace dynopt

#endif  // DYNOPT_STATS_HYPERLOGLOG_H_
