#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace dynopt {

EquiHeightHistogram EquiHeightHistogram::FromSketch(
    const GkQuantileSketch& sketch, int num_buckets) {
  EquiHeightHistogram h;
  if (sketch.count() == 0) return h;
  h.boundaries_ = sketch.ExtractBoundaries(num_buckets);
  h.count_ = sketch.count();
  return h;
}

double EquiHeightHistogram::EstimateLessOrEqualFraction(double v) const {
  if (empty()) return 0.5;
  if (v < boundaries_.front()) return 0.0;
  if (v >= boundaries_.back()) return 1.0;
  // Locate the bucket [boundaries_[i], boundaries_[i+1]) containing v.
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), v);
  size_t bucket = static_cast<size_t>(it - boundaries_.begin());
  if (bucket == 0) return 0.0;
  --bucket;  // Bucket index whose left edge is <= v.
  const double b = static_cast<double>(num_buckets());
  double lo = boundaries_[bucket];
  double hi = boundaries_[bucket + 1];
  double within = hi > lo ? (v - lo) / (hi - lo) : 1.0;
  within = std::clamp(within, 0.0, 1.0);
  return (static_cast<double>(bucket) + within) / b;
}

double EquiHeightHistogram::EstimateRangeFraction(double lo, double hi) const {
  if (empty()) return 1.0 / 3.0;  // Selinger default for range predicates.
  if (hi < lo) return 0.0;
  double upper = EstimateLessOrEqualFraction(hi);
  double lower = std::isinf(lo) && lo < 0
                     ? 0.0
                     : EstimateLessOrEqualFraction(
                           std::nextafter(lo, -std::numeric_limits<double>::infinity()));
  return std::clamp(upper - lower, 0.0, 1.0);
}

std::string EquiHeightHistogram::ToString() const {
  std::ostringstream os;
  os << "hist(buckets=" << num_buckets() << ", count=" << count_ << ", [";
  for (size_t i = 0; i < boundaries_.size(); ++i) {
    if (i > 0) os << ", ";
    os << boundaries_[i];
  }
  os << "])";
  return os.str();
}

}  // namespace dynopt
