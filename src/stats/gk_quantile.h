#ifndef DYNOPT_STATS_GK_QUANTILE_H_
#define DYNOPT_STATS_GK_QUANTILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dynopt {

/// Greenwald–Khanna epsilon-approximate quantile summary.
///
/// This is the sketch the paper (Section 4) uses to extract the bucket
/// borders of equi-height histograms: "Following the Greenwald-Khanna
/// algorithm, we extract quantiles which represent the right border of a
/// bucket in an equi-height histogram."
///
/// Guarantees: after inserting n values, Quantile(phi) returns a value whose
/// rank is within eps*n of ceil(phi*n). Summaries for different partitions
/// of a dataset can be merged (error degrades to the sum of the component
/// epsilons, which is the standard GK merging bound).
class GkQuantileSketch {
 public:
  explicit GkQuantileSketch(double epsilon = 0.005);

  /// Inserts one observation.
  void Insert(double value);

  /// Merges another summary into this one (partition-level collection).
  void Merge(const GkQuantileSketch& other);

  /// Returns an eps-approximate phi-quantile, phi in [0, 1]. Requires
  /// count() > 0.
  double Quantile(double phi) const;

  /// Estimated fraction of inserted values that are <= v (an approximate
  /// CDF evaluation). Returns a value in [0, 1]; 0 if empty.
  double EstimateRankFraction(double v) const;

  /// Extracts `num_buckets + 1` boundaries of an equi-height histogram
  /// (the 0/num_buckets ... num_buckets/num_buckets quantiles).
  std::vector<double> ExtractBoundaries(int num_buckets) const;

  uint64_t count() const { return count_; }
  double epsilon() const { return epsilon_; }
  size_t NumTuples() const { return tuples_.size(); }

 private:
  /// GK summary tuple: value v covers g ranks; delta bounds rank slack.
  struct Tuple {
    double v;
    uint64_t g;
    uint64_t delta;
  };

  void Compress();

  double epsilon_;
  uint64_t count_ = 0;
  std::vector<Tuple> tuples_;  // Sorted by v.
  uint64_t inserts_since_compress_ = 0;
};

}  // namespace dynopt

#endif  // DYNOPT_STATS_GK_QUANTILE_H_
