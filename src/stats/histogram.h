#ifndef DYNOPT_STATS_HISTOGRAM_H_
#define DYNOPT_STATS_HISTOGRAM_H_

#include <string>
#include <vector>

#include "stats/gk_quantile.h"

namespace dynopt {

/// Equi-height histogram over a column's numeric key space, built from the
/// quantile boundaries of a Greenwald–Khanna sketch (Section 4 of the
/// paper). Every bucket holds ~count/num_buckets values, so selectivity of
/// a range predicate is (#buckets covered + partial-bucket interpolation) /
/// num_buckets.
class EquiHeightHistogram {
 public:
  EquiHeightHistogram() = default;

  /// Builds a histogram with `num_buckets` buckets from a populated sketch.
  static EquiHeightHistogram FromSketch(const GkQuantileSketch& sketch,
                                        int num_buckets);

  bool empty() const { return boundaries_.size() < 2; }
  uint64_t count() const { return count_; }
  int num_buckets() const {
    return empty() ? 0 : static_cast<int>(boundaries_.size()) - 1;
  }
  const std::vector<double>& boundaries() const { return boundaries_; }

  /// Estimated fraction of values <= v. Empty histogram returns 0.5 (an
  /// uninformative prior).
  double EstimateLessOrEqualFraction(double v) const;

  /// Estimated fraction of values in the range bounded by lo/hi (either may
  /// be +-inf for an open side).
  double EstimateRangeFraction(double lo, double hi) const;

  std::string ToString() const;

 private:
  std::vector<double> boundaries_;  // num_buckets + 1 ascending values.
  uint64_t count_ = 0;
};

}  // namespace dynopt

#endif  // DYNOPT_STATS_HISTOGRAM_H_
