#ifndef DYNOPT_STATS_SKETCH_H_
#define DYNOPT_STATS_SKETCH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dynopt {

/// Predicate-transfer sketches ("Online Sketch-based Query Optimization"):
/// a partitioned Bloom filter carrying the set of join-key hashes a dataset
/// actually contains, and a Fast-AGMS sketch whose cross product estimates
/// join sizes from key-frequency vectors. Both are deterministic under a
/// fixed seed and mergeable across worker shards, so per-partition builders
/// can be combined into one dataset-level sketch.
///
/// Every operation consumes a precomputed 64-bit key hash — the executor
/// hashes values with the same HashRowKeyInline/HashKeyColumns functions the
/// shuffle uses, so equal keys produce equal hashes on both join sides
/// regardless of which column carries them.

/// SplitMix64 finalizer: the remix both sketches use to derive independent
/// hash functions from one key hash. Kept local to the stats layer so the
/// library keeps depending only on dynopt_common.
inline uint64_t SketchMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Shared knobs for one sketch family; two sketches are mergeable /
/// comparable only when built from identical options.
struct SketchOptions {
  double bits_per_key = 8.0;  ///< Bloom budget (ClusterConfig.sketch).
  size_t agms_depth = 5;      ///< Independent estimator rows (median taken).
  size_t agms_width = 256;    ///< Counters per row.
  uint64_t seed = 0x5eed5eedULL;
};

/// Partitioned (blocked) Bloom filter: k = round(bits_per_key * ln 2) hash
/// functions, each owning a private slice of the bit array, so a lookup is
/// exactly k independent probes and merging shards is a bitwise OR. No
/// false negatives ever; false-positive rate ~= (1 - e^(-n*k/m))^k.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_keys` insertions at `bits_per_key`.
  /// Deterministic: equal arguments yield equal layouts, so per-partition
  /// builders sized from the same total merge cleanly.
  BloomFilter(uint64_t expected_keys, double bits_per_key,
              uint64_t seed = SketchOptions().seed);

  void Insert(uint64_t key_hash);
  bool MayContain(uint64_t key_hash) const;

  /// Bitwise OR of another shard built with identical layout; returns false
  /// (and leaves this filter unchanged) on a layout mismatch.
  bool MergeFrom(const BloomFilter& other);

  uint64_t num_bits() const { return slice_bits_ * num_hashes_; }
  size_t num_hashes() const { return num_hashes_; }
  /// Wire size when shipped to probe-side nodes (metered as network bytes).
  uint64_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }
  uint64_t num_inserted() const { return num_inserted_; }

 private:
  void Probe(uint64_t key_hash, uint64_t* slots) const;

  uint64_t seed_;
  size_t num_hashes_;
  uint64_t slice_bits_;  ///< Bits per hash-function slice.
  uint64_t num_inserted_ = 0;
  std::vector<uint64_t> words_;
};

/// Fast-AGMS (Count-Sketch) frequency sketch over join-key hashes: depth
/// rows of width signed counters. The dot product of two sketches over the
/// same key domain estimates sum_k f_A(k) * f_B(k) — the equi-join size —
/// and the median over depth independent rows controls variance, which is
/// what lets it see hot-key skew the ndv-quotient formula misses.
class FastAgmsSketch {
 public:
  explicit FastAgmsSketch(const SketchOptions& options = SketchOptions());

  void Update(uint64_t key_hash, int64_t count = 1);

  /// Estimated equi-join cardinality against `other` (median of per-row
  /// dot products, clamped at zero). Returns -1 on a shape/seed mismatch.
  double JoinSizeEstimate(const FastAgmsSketch& other) const;

  /// Estimated sum of squared key frequencies (self-join size).
  double SelfJoinSize() const { return JoinSizeEstimate(*this); }

  /// Elementwise add of another shard; returns false on a shape mismatch.
  bool MergeFrom(const FastAgmsSketch& other);

  size_t depth() const { return depth_; }
  size_t width() const { return width_; }
  uint64_t SizeBytes() const { return counters_.size() * sizeof(int64_t); }
  uint64_t total_count() const { return total_count_; }

 private:
  bool SameShape(const FastAgmsSketch& other) const {
    return depth_ == other.depth_ && width_ == other.width_ &&
           seed_ == other.seed_;
  }

  size_t depth_;
  size_t width_;
  uint64_t seed_;
  uint64_t total_count_ = 0;
  std::vector<int64_t> counters_;  ///< depth_ x width_, row-major.
};

/// Both sketches for one (dataset, join-key column) pair, plus the exact
/// row count observed while building them.
struct JoinKeySketch {
  BloomFilter bloom;
  FastAgmsSketch agms;
  uint64_t rows = 0;       ///< Rows scanned (including null keys).
  uint64_t null_keys = 0;  ///< Rows whose key was null (never inserted).
};

/// Thread-safe registry mapping "dataset|column" -> sketch, mirroring
/// StatsManager: load-time sketches for base tables, online sketches for
/// materialized intermediates. Entries are immutable once published
/// (shared_ptr<const>), so readers never race a re-Put.
class SketchManager {
 public:
  static std::string Key(const std::string& table, const std::string& column) {
    return table + "|" + column;
  }

  void Put(const std::string& table, const std::string& column,
           std::shared_ptr<const JoinKeySketch> sketch);
  /// nullptr when no sketch exists for (table, column).
  std::shared_ptr<const JoinKeySketch> Get(const std::string& table,
                                           const std::string& column) const;
  bool Has(const std::string& table, const std::string& column) const;
  /// Drops every sketch of `table` (all columns) — temp-table cleanup.
  void RemoveTable(const std::string& table);
  void Clear();

  std::vector<std::string> Keys() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const JoinKeySketch>> sketches_;
};

}  // namespace dynopt

#endif  // DYNOPT_STATS_SKETCH_H_
