#include "stats/table_stats.h"

#include <sstream>

#include "common/logging.h"

namespace dynopt {

const ColumnStatsSnapshot* TableStats::Column(const std::string& name) const {
  auto it = columns.find(name);
  return it == columns.end() ? nullptr : &it->second;
}

std::string TableStats::ToString() const {
  std::ostringstream os;
  os << "rows=" << row_count << " bytes=" << total_bytes;
  for (const auto& [name, snap] : columns) {
    os << "\n  " << name << ": " << snap.ToString();
  }
  return os.str();
}

TableStatsBuilder::TableStatsBuilder(std::vector<std::string> column_names,
                                     std::vector<int> column_indices,
                                     const StatsOptions& options)
    : column_names_(std::move(column_names)),
      column_indices_(std::move(column_indices)) {
  DYNOPT_CHECK(column_names_.size() == column_indices_.size());
  builders_.reserve(column_names_.size());
  for (size_t i = 0; i < column_names_.size(); ++i) {
    builders_.emplace_back(options);
  }
}

void TableStatsBuilder::AddRow(const Row& row) {
  ++row_count_;
  total_bytes_ += RowSizeBytes(row);
  for (size_t i = 0; i < column_indices_.size(); ++i) {
    builders_[i].Add(row[static_cast<size_t>(column_indices_[i])]);
  }
}

void TableStatsBuilder::Merge(const TableStatsBuilder& other) {
  DYNOPT_CHECK(builders_.size() == other.builders_.size());
  row_count_ += other.row_count_;
  total_bytes_ += other.total_bytes_;
  for (size_t i = 0; i < builders_.size(); ++i) {
    builders_[i].Merge(other.builders_[i]);
  }
}

TableStats TableStatsBuilder::Finalize() const {
  TableStats stats;
  stats.row_count = row_count_;
  stats.total_bytes = total_bytes_;
  for (size_t i = 0; i < builders_.size(); ++i) {
    stats.columns[column_names_[i]] = builders_[i].Finalize();
  }
  return stats;
}

void StatsManager::Put(const std::string& table, TableStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_[table] = std::move(stats);
}

const TableStats* StatsManager::Get(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(table);
  return it == stats_.end() ? nullptr : &it->second;
}

bool StatsManager::Has(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.count(table) > 0;
}

void StatsManager::Remove(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.erase(table);
}

void StatsManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

std::vector<std::string> StatsManager::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(stats_.size());
  for (const auto& [name, _] : stats_) names.push_back(name);
  return names;
}

}  // namespace dynopt
