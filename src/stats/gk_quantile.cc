#include "stats/gk_quantile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dynopt {

GkQuantileSketch::GkQuantileSketch(double epsilon) : epsilon_(epsilon) {
  DYNOPT_CHECK(epsilon > 0 && epsilon < 0.5);
}

void GkQuantileSketch::Insert(double value) {
  // Find insertion position (first tuple with v >= value).
  auto it = std::lower_bound(
      tuples_.begin(), tuples_.end(), value,
      [](const Tuple& t, double v) { return t.v < v; });
  uint64_t delta = 0;
  if (it != tuples_.begin() && it != tuples_.end()) {
    // Interior insert: delta = floor(2 * eps * n).
    delta = static_cast<uint64_t>(std::floor(2.0 * epsilon_ *
                                             static_cast<double>(count_)));
  }
  tuples_.insert(it, Tuple{value, 1, delta});
  ++count_;
  if (++inserts_since_compress_ >=
      static_cast<uint64_t>(1.0 / (2.0 * epsilon_))) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void GkQuantileSketch::Compress() {
  if (tuples_.size() < 3) return;
  const double threshold = 2.0 * epsilon_ * static_cast<double>(count_);
  std::vector<Tuple> out;
  out.reserve(tuples_.size());
  out.push_back(tuples_[0]);
  // Greedily merge tuple i into its successor when the band condition
  // g_i + g_{i+1} + delta_{i+1} <= 2*eps*n holds. We keep the first and
  // last tuples intact so min/max quantiles stay exact.
  for (size_t i = 1; i < tuples_.size(); ++i) {
    Tuple cur = tuples_[i];
    Tuple& prev = out.back();
    bool prev_is_first = (out.size() == 1);
    bool cur_is_last = (i + 1 == tuples_.size());
    if (!prev_is_first && !cur_is_last &&
        static_cast<double>(prev.g + cur.g + cur.delta) <= threshold) {
      cur.g += prev.g;
      out.back() = cur;
    } else {
      out.push_back(cur);
    }
  }
  tuples_ = std::move(out);
}

void GkQuantileSketch::Merge(const GkQuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    tuples_ = other.tuples_;
    count_ = other.count_;
    return;
  }
  // Standard GK merge: interleave the two sorted tuple sequences. The
  // resulting summary answers queries with error eps_a + eps_b; we then
  // compress under the (larger) combined count.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  size_t i = 0, j = 0;
  while (i < tuples_.size() && j < other.tuples_.size()) {
    if (tuples_[i].v <= other.tuples_[j].v) {
      merged.push_back(tuples_[i++]);
    } else {
      merged.push_back(other.tuples_[j++]);
    }
  }
  while (i < tuples_.size()) merged.push_back(tuples_[i++]);
  while (j < other.tuples_.size()) merged.push_back(other.tuples_[j++]);
  tuples_ = std::move(merged);
  count_ += other.count_;
  Compress();
}

double GkQuantileSketch::Quantile(double phi) const {
  DYNOPT_CHECK(count_ > 0);
  phi = std::clamp(phi, 0.0, 1.0);
  const double target =
      phi * static_cast<double>(count_ - 1) + 1.0;  // 1-based rank.
  const double slack = epsilon_ * static_cast<double>(count_);
  uint64_t rmin = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    rmin += tuples_[i].g;
    const double rmax = static_cast<double>(rmin + tuples_[i].delta);
    if (rmax >= target - slack &&
        static_cast<double>(rmin) >= target - slack) {
      return tuples_[i].v;
    }
    if (rmax >= target + slack) return tuples_[i].v;
  }
  return tuples_.back().v;
}

double GkQuantileSketch::EstimateRankFraction(double v) const {
  if (count_ == 0) return 0.0;
  if (v < tuples_.front().v) return 0.0;
  if (v >= tuples_.back().v) return 1.0;
  uint64_t rmin = 0;
  double prev_v = tuples_.front().v;
  uint64_t prev_rank = 0;
  for (const Tuple& t : tuples_) {
    rmin += t.g;
    const uint64_t mid_rank = rmin + t.delta / 2;
    if (t.v > v) {
      // Linear interpolation between the previous tuple and this one.
      double span = t.v - prev_v;
      double frac = span > 0 ? (v - prev_v) / span : 0.0;
      double rank = static_cast<double>(prev_rank) +
                    frac * static_cast<double>(mid_rank - prev_rank);
      return std::clamp(rank / static_cast<double>(count_), 0.0, 1.0);
    }
    prev_v = t.v;
    prev_rank = mid_rank;
  }
  return 1.0;
}

std::vector<double> GkQuantileSketch::ExtractBoundaries(
    int num_buckets) const {
  std::vector<double> boundaries;
  if (count_ == 0 || num_buckets <= 0) return boundaries;
  boundaries.reserve(static_cast<size_t>(num_buckets) + 1);
  for (int b = 0; b <= num_buckets; ++b) {
    boundaries.push_back(Quantile(static_cast<double>(b) /
                                  static_cast<double>(num_buckets)));
  }
  return boundaries;
}

}  // namespace dynopt
