#include "sql/parser.h"

#include "sql/lexer.h"

namespace dynopt {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> ParseStatement() {
    SelectStatement stmt;
    DYNOPT_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    DYNOPT_ASSIGN_OR_RETURN(stmt.select_list, ParseSelectList());
    DYNOPT_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DYNOPT_ASSIGN_OR_RETURN(stmt.from, ParseFromList());
    if (MatchKeyword("WHERE")) {
      DYNOPT_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (MatchKeyword("GROUP")) {
      DYNOPT_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        DYNOPT_ASSIGN_OR_RETURN(ExprPtr col, ParseColumnRef());
        stmt.group_by.push_back(std::move(col));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("ORDER")) {
      DYNOPT_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        SelectStatement::OrderItem item;
        DYNOPT_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Status::ParseError("expected integer after LIMIT");
      }
      stmt.limit = std::stoll(Advance().text);
    }
    if (Peek().type != TokenType::kEnd) {
      return Status::ParseError("trailing input after statement: '" +
                                Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool MatchKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  bool Match(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError("expected " + kw + " near '" + Peek().text +
                                "' at offset " +
                                std::to_string(Peek().position));
    }
    return Status::OK();
  }
  Status Expect(TokenType type, const char* what) {
    if (!Match(type)) {
      return Status::ParseError(std::string("expected ") + what + " near '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().position));
    }
    return Status::OK();
  }

  Result<ExprPtr> ParseColumnRef() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected column name near '" + Peek().text +
                                "'");
    }
    std::string first = Advance().text;
    if (Match(TokenType::kDot)) {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::ParseError("expected column name after '" + first +
                                  ".'");
      }
      std::string column = Advance().text;
      return Col(first, column);
    }
    return Col("", first);
  }

  bool PeekAggregateKeyword() const {
    if (Peek().type != TokenType::kKeyword) return false;
    const std::string& kw = Peek().text;
    return kw == "COUNT" || kw == "SUM" || kw == "MIN" || kw == "MAX" ||
           kw == "AVG";
  }

  Result<std::vector<SelectStatement::SelectItem>> ParseSelectList() {
    std::vector<SelectStatement::SelectItem> list;
    do {
      SelectStatement::SelectItem item;
      if (Peek().type == TokenType::kStar) {
        Advance();
        item.is_star = true;
        list.push_back(std::move(item));
        continue;
      }
      if (PeekAggregateKeyword()) {
        item.is_aggregate = true;
        item.agg_fn = Advance().text;
        DYNOPT_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        DYNOPT_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        DYNOPT_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      } else {
        DYNOPT_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
      }
      list.push_back(std::move(item));
    } while (Match(TokenType::kComma));
    return list;
  }

  Result<std::vector<SelectStatement::FromItem>> ParseFromList() {
    std::vector<SelectStatement::FromItem> from;
    do {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::ParseError("expected table name near '" + Peek().text +
                                  "'");
      }
      SelectStatement::FromItem item;
      item.table = Advance().text;
      // Dotted name ("sys.metrics"): the catalog name keeps the dot; the
      // default alias is the last segment so column references stay
      // single-dot ("metrics.name").
      std::string default_alias = item.table;
      if (Match(TokenType::kDot)) {
        if (Peek().type != TokenType::kIdentifier) {
          return Status::ParseError("expected name after '" + item.table +
                                    ".'");
        }
        default_alias = Advance().text;
        item.table += "." + default_alias;
      }
      MatchKeyword("AS");
      if (Peek().type == TokenType::kIdentifier) {
        item.alias = Advance().text;
      } else {
        item.alias = default_alias;
      }
      from.push_back(std::move(item));
    } while (Match(TokenType::kComma));
    return from;
  }

  Result<ExprPtr> ParseOr() {
    DYNOPT_ASSIGN_OR_RETURN(ExprPtr first, ParseAnd());
    std::vector<ExprPtr> children{std::move(first)};
    while (MatchKeyword("OR")) {
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr next, ParseAnd());
      children.push_back(std::move(next));
    }
    return children.size() == 1 ? children[0] : Or(std::move(children));
  }

  Result<ExprPtr> ParseAnd() {
    DYNOPT_ASSIGN_OR_RETURN(ExprPtr first, ParseUnary());
    std::vector<ExprPtr> children{std::move(first)};
    while (MatchKeyword("AND")) {
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr next, ParseUnary());
      children.push_back(std::move(next));
    }
    return children.size() == 1 ? children[0] : And(std::move(children));
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchKeyword("NOT")) {
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      return Not(std::move(child));
    }
    if (Peek().type == TokenType::kLParen) {
      Advance();
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      DYNOPT_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return inner;
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    DYNOPT_ASSIGN_OR_RETURN(ExprPtr left, ParseOperand());
    if (MatchKeyword("BETWEEN")) {
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr lo, ParseOperand());
      DYNOPT_RETURN_IF_ERROR(ExpectKeyword("AND"));
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr hi, ParseOperand());
      return Between(std::move(left), std::move(lo), std::move(hi));
    }
    CompareOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = CompareOp::kEq;
        break;
      case TokenType::kNe:
        op = CompareOp::kNe;
        break;
      case TokenType::kLt:
        op = CompareOp::kLt;
        break;
      case TokenType::kLe:
        op = CompareOp::kLe;
        break;
      case TokenType::kGt:
        op = CompareOp::kGt;
        break;
      case TokenType::kGe:
        op = CompareOp::kGe;
        break;
      default:
        // Bare boolean operand, e.g. a boolean-valued UDF call.
        return left;
    }
    Advance();
    DYNOPT_ASSIGN_OR_RETURN(ExprPtr right, ParseOperand());
    return Cmp(op, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseOperand() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kIntLiteral: {
        int64_t v = std::stoll(Advance().text);
        return Lit(Value(v));
      }
      case TokenType::kDoubleLiteral: {
        double v = std::stod(Advance().text);
        return Lit(Value(v));
      }
      case TokenType::kStringLiteral:
        return Lit(Value(Advance().text));
      case TokenType::kParam:
        return Param(Advance().text);
      case TokenType::kKeyword: {
        if (tok.text == "TRUE") {
          Advance();
          return Lit(Value(true));
        }
        if (tok.text == "FALSE") {
          Advance();
          return Lit(Value(false));
        }
        if (tok.text == "NULL") {
          Advance();
          return Lit(Value::Null());
        }
        return Status::ParseError("unexpected keyword '" + tok.text +
                                  "' in expression");
      }
      case TokenType::kIdentifier: {
        // UDF call or column reference.
        if (Peek(1).type == TokenType::kLParen) {
          std::string name = Advance().text;
          Advance();  // '('
          std::vector<ExprPtr> args;
          if (Peek().type != TokenType::kRParen) {
            do {
              DYNOPT_ASSIGN_OR_RETURN(ExprPtr arg, ParseOperand());
              args.push_back(std::move(arg));
            } while (Match(TokenType::kComma));
          }
          DYNOPT_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return Udf(std::move(name), std::move(args));
        }
        return ParseColumnRef();
      }
      default:
        return Status::ParseError("unexpected token '" + tok.text +
                                  "' in expression at offset " +
                                  std::to_string(tok.position));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& sql) {
  DYNOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace dynopt
