#ifndef DYNOPT_SQL_BINDER_H_
#define DYNOPT_SQL_BINDER_H_

#include <map>
#include <string>

#include "common/status.h"
#include "plan/query_spec.h"
#include "sql/parser.h"
#include "storage/catalog.h"

namespace dynopt {

/// Resolves a parsed SELECT against the catalog into a validated QuerySpec:
/// tables checked, unqualified columns disambiguated, WHERE conjuncts
/// classified into equi-join edges (column = column across aliases) vs
/// local selection predicates (everything else, attached to their single
/// dataset). `params` supplies values for $parameters referenced by the
/// query (their presence is validated, their values stay opaque to the
/// optimizer).
Result<QuerySpec> BindSelect(const SelectStatement& stmt,
                             const Catalog& catalog,
                             std::map<std::string, Value> params = {});

/// Parse + bind in one step.
Result<QuerySpec> ParseAndBind(const std::string& sql, const Catalog& catalog,
                               std::map<std::string, Value> params = {});

}  // namespace dynopt

#endif  // DYNOPT_SQL_BINDER_H_
