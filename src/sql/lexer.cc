#include "sql/lexer.h"

#include <cctype>

namespace dynopt {

namespace {

const char* const kKeywords[] = {
    "SELECT", "FROM", "WHERE", "AND",   "OR",  "NOT", "BETWEEN",
    "AS",     "TRUE", "FALSE", "NULL",  "GROUP", "BY", "ORDER",
    "LIMIT",  "ASC",  "DESC",  "COUNT", "SUM", "MIN", "MAX", "AVG"};

bool IsKeyword(const std::string& upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      tokens.push_back({is_double ? TokenType::kDoubleLiteral
                                  : TokenType::kIntLiteral,
                        sql.substr(start, i - start), start});
      continue;
    }
    switch (c) {
      case '\'': {
        ++i;
        std::string text;
        while (i < n && sql[i] != '\'') text += sql[i++];
        if (i >= n) {
          return Status::ParseError("unterminated string literal at offset " +
                                    std::to_string(start));
        }
        ++i;  // Closing quote.
        tokens.push_back({TokenType::kStringLiteral, text, start});
        break;
      }
      case '$': {
        ++i;
        std::string name;
        while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                         sql[i] == '_')) {
          name += sql[i++];
        }
        if (name.empty()) {
          return Status::ParseError("empty parameter name at offset " +
                                    std::to_string(start));
        }
        tokens.push_back({TokenType::kParam, name, start});
        break;
      }
      case ',':
        tokens.push_back({TokenType::kComma, ",", start});
        ++i;
        break;
      case '.':
        tokens.push_back({TokenType::kDot, ".", start});
        ++i;
        break;
      case '(':
        tokens.push_back({TokenType::kLParen, "(", start});
        ++i;
        break;
      case ')':
        tokens.push_back({TokenType::kRParen, ")", start});
        ++i;
        break;
      case '*':
        tokens.push_back({TokenType::kStar, "*", start});
        ++i;
        break;
      case ';':
        ++i;  // Statement terminator is optional and ignored.
        break;
      case '=':
        tokens.push_back({TokenType::kEq, "=", start});
        ++i;
        break;
      case '!':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kNe, "!=", start});
          i += 2;
        } else {
          return Status::ParseError("unexpected '!' at offset " +
                                    std::to_string(start));
        }
        break;
      case '<':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kLe, "<=", start});
          i += 2;
        } else if (i + 1 < n && sql[i + 1] == '>') {
          tokens.push_back({TokenType::kNe, "<>", start});
          i += 2;
        } else {
          tokens.push_back({TokenType::kLt, "<", start});
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && sql[i + 1] == '=') {
          tokens.push_back({TokenType::kGe, ">=", start});
          i += 2;
        } else {
          tokens.push_back({TokenType::kGt, ">", start});
          ++i;
        }
        break;
      default:
        return Status::ParseError(std::string("unexpected character '") + c +
                                  "' at offset " + std::to_string(start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace dynopt
