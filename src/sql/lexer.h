#ifndef DYNOPT_SQL_LEXER_H_
#define DYNOPT_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dynopt {

enum class TokenType {
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kParam,      ///< $name
  kComma,
  kDot,
  kLParen,
  kRParen,
  kEq,         ///< =
  kNe,         ///< != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kStar,
  kEnd,
};

/// One lexical token; keywords are uppercased in `text`.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  size_t position = 0;  ///< Byte offset in the input, for error messages.
};

/// Tokenizes the select-project-join SQL dialect used by the workloads.
/// Keywords recognized: SELECT FROM WHERE AND OR NOT BETWEEN AS TRUE FALSE
/// NULL GROUP BY ORDER LIMIT ASC DESC COUNT SUM MIN MAX AVG. Identifiers
/// are case-preserved; keywords are case-insensitive.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace dynopt

#endif  // DYNOPT_SQL_LEXER_H_
