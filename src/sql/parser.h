#ifndef DYNOPT_SQL_PARSER_H_
#define DYNOPT_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "plan/expr.h"

namespace dynopt {

/// Parsed SELECT statement (pre-binding). Expressions reuse the plan layer's
/// Expr tree; column references may still be unqualified (empty alias) —
/// the binder resolves them against the catalog.
struct SelectStatement {
  struct FromItem {
    std::string table;
    std::string alias;  ///< Defaults to the table name.
  };

  /// One SELECT-list entry: a plain column, an aggregate over one, or the
  /// `*` wildcard (expanded by the binder to every column of every FROM
  /// entry, in declaration order).
  struct SelectItem {
    bool is_aggregate = false;
    bool is_star = false;
    std::string agg_fn;  ///< COUNT/SUM/MIN/MAX/AVG when is_aggregate.
    ExprPtr column;      ///< Always a ColumnRefExpr; null when is_star.
  };

  struct OrderItem {
    ExprPtr column;  ///< ColumnRefExpr (an output column).
    bool descending = false;
  };

  std::vector<SelectItem> select_list;
  std::vector<FromItem> from;
  ExprPtr where;  ///< May be null (no WHERE clause).
  std::vector<ExprPtr> group_by;  ///< ColumnRefExpr entries.
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< Negative = absent.
};

/// Parses the dialect the paper's queries need:
///   SELECT */[agg(]col[)][, ...] FROM table[.part] [AS] alias[, ...]
///   [WHERE conjunct AND ...] [GROUP BY col, ...]
///   [ORDER BY col [ASC|DESC], ...] [LIMIT n]
/// Conjuncts: comparisons (= != <> < <= > >=), BETWEEN ... AND ...,
/// [NOT] udf(args), OR groups in parentheses, string/number/param ($name)
/// literals. Aggregates: COUNT SUM MIN MAX AVG.
Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace dynopt

#endif  // DYNOPT_SQL_PARSER_H_
