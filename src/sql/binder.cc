#include "sql/binder.h"

#include <algorithm>
#include <set>

#include "storage/schema.h"

namespace dynopt {

namespace {

/// Alias -> schema lookup for the statement's FROM entries.
class Scope {
 public:
  Status Add(const std::string& alias, const Schema* schema) {
    if (!entries_.emplace(alias, schema).second) {
      return Status::BindError("duplicate alias " + alias);
    }
    return Status::OK();
  }

  /// Resolves (alias, column): empty alias searches all entries and must be
  /// unambiguous. Returns the owning alias.
  Result<std::string> Resolve(const std::string& alias,
                              const std::string& column) const {
    if (!alias.empty()) {
      auto it = entries_.find(alias);
      if (it == entries_.end()) {
        return Status::BindError("unknown alias " + alias);
      }
      if (!it->second->HasField(column)) {
        return Status::BindError("column " + column + " not in " + alias);
      }
      return alias;
    }
    std::string found;
    for (const auto& [a, schema] : entries_) {
      if (schema->HasField(column)) {
        if (!found.empty()) {
          return Status::BindError("ambiguous column " + column +
                                   " (in both " + found + " and " + a + ")");
        }
        found = a;
      }
    }
    if (found.empty()) {
      return Status::BindError("column " + column +
                               " not found in any FROM entry");
    }
    return found;
  }

 private:
  std::map<std::string, const Schema*> entries_;
};

/// Rewrites an expression so every column reference carries its resolved
/// alias, and records referenced parameter names.
Result<ExprPtr> Qualify(const ExprPtr& expr, const Scope& scope,
                        std::set<std::string>* param_names) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      const auto& col = static_cast<const ColumnRefExpr&>(*expr);
      DYNOPT_ASSIGN_OR_RETURN(std::string alias,
                              scope.Resolve(col.alias(), col.column()));
      if (alias == col.alias()) return expr;
      return Col(alias, col.column());
    }
    case ExprKind::kLiteral:
      return expr;
    case ExprKind::kParam:
      param_names->insert(static_cast<const ParamExpr&>(*expr).name());
      return expr;
    case ExprKind::kComparison: {
      const auto& cmp = static_cast<const ComparisonExpr&>(*expr);
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr l, Qualify(cmp.left(), scope, param_names));
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr r,
                              Qualify(cmp.right(), scope, param_names));
      return Cmp(cmp.op(), std::move(l), std::move(r));
    }
    case ExprKind::kBetween: {
      const auto& between = static_cast<const BetweenExpr&>(*expr);
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr in,
                              Qualify(between.input(), scope, param_names));
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr lo,
                              Qualify(between.lo(), scope, param_names));
      DYNOPT_ASSIGN_OR_RETURN(ExprPtr hi,
                              Qualify(between.hi(), scope, param_names));
      return Between(std::move(in), std::move(lo), std::move(hi));
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const auto& children =
          expr->kind() == ExprKind::kAnd
              ? static_cast<const AndExpr&>(*expr).children()
              : static_cast<const OrExpr&>(*expr).children();
      std::vector<ExprPtr> out;
      out.reserve(children.size());
      for (const auto& child : children) {
        DYNOPT_ASSIGN_OR_RETURN(ExprPtr q, Qualify(child, scope, param_names));
        out.push_back(std::move(q));
      }
      return expr->kind() == ExprKind::kAnd ? And(std::move(out))
                                            : Or(std::move(out));
    }
    case ExprKind::kNot: {
      DYNOPT_ASSIGN_OR_RETURN(
          ExprPtr child,
          Qualify(static_cast<const NotExpr&>(*expr).child(), scope,
                  param_names));
      return Not(std::move(child));
    }
    case ExprKind::kUdfCall: {
      const auto& udf = static_cast<const UdfCallExpr&>(*expr);
      std::vector<ExprPtr> args;
      args.reserve(udf.args().size());
      for (const auto& arg : udf.args()) {
        DYNOPT_ASSIGN_OR_RETURN(ExprPtr q, Qualify(arg, scope, param_names));
        args.push_back(std::move(q));
      }
      return Udf(udf.name(), std::move(args));
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace

Result<QuerySpec> BindSelect(const SelectStatement& stmt,
                             const Catalog& catalog,
                             std::map<std::string, Value> params) {
  QuerySpec spec;
  Scope scope;
  // Keep the schemas alive for the duration of binding.
  std::vector<std::shared_ptr<Table>> tables;
  for (const auto& item : stmt.from) {
    DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                            catalog.GetTable(item.table));
    DYNOPT_RETURN_IF_ERROR(scope.Add(item.alias, &table->schema()));
    tables.push_back(table);
    TableRef ref;
    ref.table = item.table;
    ref.alias = item.alias;
    spec.tables.push_back(std::move(ref));
  }

  std::set<std::string> param_names;
  auto add_projection = [&spec](const std::string& name) {
    if (std::find(spec.projections.begin(), spec.projections.end(), name) ==
        spec.projections.end()) {
      spec.projections.push_back(name);
    }
  };

  // GROUP BY columns come first in the output schema.
  for (const auto& col : stmt.group_by) {
    DYNOPT_ASSIGN_OR_RETURN(ExprPtr qualified,
                            Qualify(col, scope, &param_names));
    std::string name =
        static_cast<const ColumnRefExpr&>(*qualified).Qualified();
    add_projection(name);
    spec.group_by.push_back(std::move(name));
  }

  bool has_aggregates = false;
  for (const auto& item : stmt.select_list) {
    if (item.is_aggregate) has_aggregates = true;
  }
  for (const auto& item : stmt.select_list) {
    if (item.is_star) {
      if (has_aggregates || !stmt.group_by.empty()) {
        return Status::BindError(
            "SELECT * cannot be combined with aggregates or GROUP BY");
      }
      // Every column of every FROM entry, in declaration order.
      for (size_t i = 0; i < stmt.from.size(); ++i) {
        const Schema& schema = tables[i]->schema();
        for (const auto& field : schema.fields()) {
          add_projection(stmt.from[i].alias + "." + field.name);
        }
      }
      continue;
    }
    DYNOPT_ASSIGN_OR_RETURN(ExprPtr qualified,
                            Qualify(item.column, scope, &param_names));
    std::string name =
        static_cast<const ColumnRefExpr&>(*qualified).Qualified();
    if (item.is_aggregate) {
      AggregateSpec agg;
      if (item.agg_fn == "COUNT") {
        agg.fn = AggFn::kCount;
      } else if (item.agg_fn == "SUM") {
        agg.fn = AggFn::kSum;
      } else if (item.agg_fn == "MIN") {
        agg.fn = AggFn::kMin;
      } else if (item.agg_fn == "MAX") {
        agg.fn = AggFn::kMax;
      } else {
        agg.fn = AggFn::kAvg;
      }
      agg.input = name;
      agg.output_name = item.agg_fn + "(" + name + ")";
      add_projection(name);
      spec.aggregates.push_back(std::move(agg));
    } else {
      if (has_aggregates || !stmt.group_by.empty()) {
        // Plain columns must be grouped.
        if (std::find(spec.group_by.begin(), spec.group_by.end(), name) ==
            spec.group_by.end()) {
          return Status::BindError("column " + name +
                                   " must appear in GROUP BY");
        }
      }
      add_projection(name);
    }
  }

  for (const auto& item : stmt.order_by) {
    DYNOPT_ASSIGN_OR_RETURN(ExprPtr qualified,
                            Qualify(item.column, scope, &param_names));
    OrderKey key;
    key.column = static_cast<const ColumnRefExpr&>(*qualified).Qualified();
    key.descending = item.descending;
    spec.order_by.push_back(std::move(key));
  }
  spec.limit = stmt.limit;

  if (stmt.where != nullptr) {
    DYNOPT_ASSIGN_OR_RETURN(ExprPtr where,
                            Qualify(stmt.where, scope, &param_names));
    for (const auto& conjunct : SplitConjuncts(where)) {
      // column = column across two aliases => equi-join edge.
      if (conjunct->kind() == ExprKind::kComparison) {
        const auto& cmp = static_cast<const ComparisonExpr&>(*conjunct);
        if (cmp.op() == CompareOp::kEq &&
            cmp.left()->kind() == ExprKind::kColumnRef &&
            cmp.right()->kind() == ExprKind::kColumnRef) {
          const auto& l = static_cast<const ColumnRefExpr&>(*cmp.left());
          const auto& r = static_cast<const ColumnRefExpr&>(*cmp.right());
          if (l.alias() != r.alias()) {
            JoinEdge edge;
            edge.left_alias = l.alias();
            edge.right_alias = r.alias();
            edge.keys.emplace_back(l.Qualified(), r.Qualified());
            spec.joins.push_back(std::move(edge));
            continue;
          }
        }
      }
      // Everything else is a local predicate of exactly one dataset.
      std::vector<const ColumnRefExpr*> cols;
      conjunct->CollectColumns(&cols);
      std::set<std::string> aliases;
      for (const ColumnRefExpr* col : cols) aliases.insert(col->alias());
      if (aliases.size() != 1) {
        return Status::BindError(
            "predicate must reference exactly one dataset (non-equi multi-"
            "dataset predicates unsupported): " +
            conjunct->ToString());
      }
      spec.predicates.push_back(LocalPredicate{*aliases.begin(), conjunct});
    }
  }

  // Parameter values: every referenced parameter must be supplied.
  for (const auto& name : param_names) {
    if (params.count(name) == 0) {
      return Status::BindError("missing value for parameter $" + name);
    }
  }
  spec.params = std::move(params);

  spec.NormalizeJoins();
  DYNOPT_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

Result<QuerySpec> ParseAndBind(const std::string& sql, const Catalog& catalog,
                               std::map<std::string, Value> params) {
  DYNOPT_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelect(sql));
  return BindSelect(stmt, catalog, std::move(params));
}

}  // namespace dynopt
