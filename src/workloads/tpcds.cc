#include "workloads/tpcds.h"

#include <cmath>
#include <vector>

#include "common/random.h"
#include "sql/binder.h"
#include "storage/schema.h"

namespace dynopt {

namespace {

std::vector<std::string> AllColumns(const Table& table) {
  std::vector<std::string> cols;
  for (size_t i = 0; i < table.schema().num_fields(); ++i) {
    cols.push_back(table.schema().field(i).name);
  }
  return cols;
}

}  // namespace

TpcdsCardinalities ComputeTpcdsCardinalities(double sf) {
  TpcdsCardinalities c;
  c.store = static_cast<uint64_t>(std::llround(12 + 4 * sf));
  c.item = static_cast<uint64_t>(std::llround(1800 * sf));
  c.customers = static_cast<uint64_t>(std::llround(3000 * sf));
  c.store_sales = static_cast<uint64_t>(std::llround(28800 * sf));
  c.store_returns = c.store_sales / 10;
  c.catalog_sales = static_cast<uint64_t>(std::llround(14400 * sf));
  return c;
}

Status LoadTpcds(Engine* engine, const TpcdsOptions& options) {
  Catalog& catalog = engine->catalog();
  const size_t parts = engine->cluster().num_nodes;
  Rng rng(options.seed);
  TpcdsCardinalities n = ComputeTpcdsCardinalities(options.sf);

  // --- date_dim: one row per (360-day-year) day, 1998..2002 ----------------
  {
    auto t = std::make_shared<Table>(
        "date_dim",
        Schema({{"d_date_sk", ValueType::kInt64},
                {"d_date", ValueType::kInt64},
                {"d_year", ValueType::kInt64},
                {"d_moy", ValueType::kInt64}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"d_date_sk"}));
    for (uint64_t day = 0; day < n.date_dim; ++day) {
      int64_t year = 1998 + static_cast<int64_t>(day) / 360;
      int64_t rem = static_cast<int64_t>(day) % 360;
      int64_t moy = rem / 30 + 1;
      int64_t dom = rem % 30 + 1;
      t->AppendRow({Value(static_cast<int64_t>(2450000 + day)),
                    Value(year * 10000 + moy * 100 + dom), Value(year),
                    Value(moy)});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }
  auto date_sk = [&](uint64_t day) {
    return static_cast<int64_t>(2450000 + day % n.date_dim);
  };

  // --- store ----------------------------------------------------------------
  {
    auto t = std::make_shared<Table>(
        "store",
        Schema({{"s_store_sk", ValueType::kInt64},
                {"s_store_id", ValueType::kString},
                {"s_store_name", ValueType::kString}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"s_store_sk"}));
    for (uint64_t i = 0; i < n.store; ++i) {
      t->AppendRow({Value(static_cast<int64_t>(i)),
                    Value("STORE_" + std::to_string(i)),
                    Value("store_name_" + std::to_string(i))});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- item -------------------------------------------------------------
  {
    auto t = std::make_shared<Table>(
        "item",
        Schema({{"i_item_sk", ValueType::kInt64},
                {"i_item_id", ValueType::kString},
                {"i_item_desc", ValueType::kString},
                {"i_brand", ValueType::kString}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"i_item_sk"}));
    for (uint64_t i = 0; i < n.item; ++i) {
      t->AppendRow({Value(static_cast<int64_t>(i)),
                    Value("ITEM_" + std::to_string(i)),
                    Value("desc_" + std::to_string(i)),
                    Value("brand_" + std::to_string(i % 50))});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- store_sales: Zipf-skewed customers, ~2 lines per ticket -------------
  ZipfDistribution customer_dist(n.customers, options.customer_skew);
  struct SaleKey {
    int64_t item;
    int64_t ticket;
    int64_t customer;
    uint64_t sold_day;
  };
  std::vector<SaleKey> sales;
  sales.reserve(n.store_sales);
  {
    auto t = std::make_shared<Table>(
        "store_sales",
        Schema({{"ss_sold_date_sk", ValueType::kInt64},
                {"ss_item_sk", ValueType::kInt64},
                {"ss_customer_sk", ValueType::kInt64},
                {"ss_ticket_number", ValueType::kInt64},
                {"ss_store_sk", ValueType::kInt64},
                {"ss_quantity", ValueType::kInt64}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"ss_ticket_number"}));
    int64_t ticket = 0;
    int64_t ticket_customer = 0;
    uint64_t ticket_day = 0;
    int64_t lines_left = 0;
    for (uint64_t i = 0; i < n.store_sales; ++i) {
      if (lines_left == 0) {
        ++ticket;
        ticket_customer = static_cast<int64_t>(customer_dist.Sample(rng));
        ticket_day = rng.NextUint64(n.date_dim);
        lines_left = rng.NextInt64(1, 3);
      }
      --lines_left;
      int64_t item = rng.NextInt64(0, static_cast<int64_t>(n.item) - 1);
      sales.push_back(SaleKey{item, ticket, ticket_customer, ticket_day});
      t->AppendRow({Value(date_sk(ticket_day)), Value(item),
                    Value(ticket_customer), Value(ticket),
                    Value(rng.NextInt64(0, static_cast<int64_t>(n.store) - 1)),
                    Value(rng.NextInt64(1, 100))});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- store_returns: ~10% of sales, matching (item, ticket, customer) -----
  std::vector<std::pair<int64_t, int64_t>> returned_pairs;  // (customer, item)
  {
    auto t = std::make_shared<Table>(
        "store_returns",
        Schema({{"sr_returned_date_sk", ValueType::kInt64},
                {"sr_item_sk", ValueType::kInt64},
                {"sr_customer_sk", ValueType::kInt64},
                {"sr_ticket_number", ValueType::kInt64},
                {"sr_return_quantity", ValueType::kInt64}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"sr_ticket_number"}));
    for (const SaleKey& sale : sales) {
      if (!rng.NextBool(0.1)) continue;
      // Returns concentrate in months 8-10 (holiday-return season, 60% of
      // returns): the parameterized d_moy filter of Q50 is therefore far
      // more selective than a blind optimizer's default suggests.
      uint64_t return_day;
      if (rng.NextBool(0.6)) {
        uint64_t year = (sale.sold_day / 360 + rng.NextUint64(2)) %
                        (n.date_dim / 360);
        return_day = year * 360 + 7 * 30 + rng.NextUint64(90);
      } else {
        return_day = sale.sold_day + rng.NextUint64(60) + 1;
      }
      if (return_day >= n.date_dim) return_day = n.date_dim - 1;
      t->AppendRow({Value(date_sk(return_day)), Value(sale.item),
                    Value(sale.customer), Value(sale.ticket),
                    Value(rng.NextInt64(1, 10))});
      returned_pairs.emplace_back(sale.customer, sale.item);
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- catalog_sales: partially correlated with returns --------------------
  {
    auto t = std::make_shared<Table>(
        "catalog_sales",
        Schema({{"cs_sold_date_sk", ValueType::kInt64},
                {"cs_item_sk", ValueType::kInt64},
                {"cs_bill_customer_sk", ValueType::kInt64},
                {"cs_quantity", ValueType::kInt64}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(
        t->SetPartitionKey({"cs_item_sk", "cs_bill_customer_sk"}));
    for (uint64_t i = 0; i < n.catalog_sales; ++i) {
      int64_t customer, item;
      if (!returned_pairs.empty() && rng.NextBool(0.35)) {
        // Returned customers often re-order by catalog: these rows make the
        // sr-cs non-key join of Q17 productive and skewed.
        const auto& pair =
            returned_pairs[rng.NextUint64(returned_pairs.size())];
        customer = pair.first;
        item = pair.second;
      } else {
        customer = static_cast<int64_t>(customer_dist.Sample(rng));
        item = rng.NextInt64(0, static_cast<int64_t>(n.item) - 1);
      }
      t->AppendRow({Value(date_sk(rng.NextUint64(n.date_dim))), Value(item),
                    Value(customer), Value(rng.NextInt64(1, 100))});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  if (options.collect_base_stats) {
    for (const char* name : {"date_dim", "store", "item", "store_sales",
                             "store_returns", "catalog_sales"}) {
      DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                              catalog.GetTable(name));
      DYNOPT_RETURN_IF_ERROR(engine->CollectBaseStats(name, AllColumns(*t)));
    }
  }
  return Status::OK();
}

Status CreateTpcdsIndexes(Engine* engine) {
  struct IndexSpec {
    const char* table;
    const char* column;
  };
  const IndexSpec specs[] = {{"store_sales", "ss_sold_date_sk"},
                             {"store_returns", "sr_returned_date_sk"},
                             {"catalog_sales", "cs_sold_date_sk"}};
  for (const auto& spec : specs) {
    DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                            engine->catalog().GetTable(spec.table));
    Status st = t->CreateSecondaryIndex(spec.column);
    if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
  }
  return Status::OK();
}

std::string TpcdsQ17Sql() {
  return R"(SELECT i.i_item_id, i.i_item_desc, s.s_store_id, s.s_store_name,
       COUNT(ss.ss_quantity), SUM(sr.sr_return_quantity),
       MAX(cs.cs_quantity)
FROM store_sales ss, store_returns sr, catalog_sales cs,
     date_dim d1, date_dim d2, date_dim d3, store s, item i
WHERE d1.d_moy = 4
  AND d1.d_year = 2001
  AND d1.d_date_sk = ss.ss_sold_date_sk
  AND i.i_item_sk = ss.ss_item_sk
  AND s.s_store_sk = ss.ss_store_sk
  AND ss.ss_customer_sk = sr.sr_customer_sk
  AND ss.ss_item_sk = sr.sr_item_sk
  AND ss.ss_ticket_number = sr.sr_ticket_number
  AND sr.sr_returned_date_sk = d2.d_date_sk
  AND d2.d_moy BETWEEN 4 AND 10
  AND d2.d_year = 2001
  AND sr.sr_customer_sk = cs.cs_bill_customer_sk
  AND sr.sr_item_sk = cs.cs_item_sk
  AND cs.cs_sold_date_sk = d3.d_date_sk
  AND d3.d_moy BETWEEN 4 AND 10
  AND d3.d_year = 2001
GROUP BY i.i_item_id, i.i_item_desc, s.s_store_id, s.s_store_name
ORDER BY i.i_item_id, i.i_item_desc, s.s_store_id, s.s_store_name
LIMIT 100)";
}

std::string TpcdsQ50Sql() {
  return R"(SELECT s.s_store_name, ss.ss_quantity
FROM store_sales ss, store_returns sr, date_dim d1, date_dim d2, store s
WHERE d1.d_moy = $moy
  AND d1.d_year = $year
  AND d1.d_date_sk = sr.sr_returned_date_sk
  AND ss.ss_customer_sk = sr.sr_customer_sk
  AND ss.ss_item_sk = sr.sr_item_sk
  AND ss.ss_ticket_number = sr.sr_ticket_number
  AND ss.ss_sold_date_sk = d2.d_date_sk
  AND ss.ss_store_sk = s.s_store_sk)";
}

Result<QuerySpec> TpcdsQ17(Engine* engine) {
  return ParseAndBind(TpcdsQ17Sql(), engine->catalog());
}

Result<QuerySpec> TpcdsQ50(Engine* engine, int64_t moy, int64_t year) {
  return ParseAndBind(TpcdsQ50Sql(), engine->catalog(),
                      {{"moy", Value(moy)}, {"year", Value(year)}});
}

}  // namespace dynopt
