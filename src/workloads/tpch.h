#ifndef DYNOPT_WORKLOADS_TPCH_H_
#define DYNOPT_WORKLOADS_TPCH_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/engine.h"
#include "plan/query_spec.h"

namespace dynopt {

/// Generator knobs for the TPC-H-like workload. `sf` scales row counts
/// linearly while preserving the official TPC-H ratios between tables
/// (1 unit ~= 1/100 of official SF 1, so experiments stay laptop-sized;
/// the paper's SF 10/100/1000 map to sf 1/4/16 in the bench harness).
struct TpchOptions {
  double sf = 1.0;
  uint64_t seed = 42;
  /// Collect load-time base statistics (the LSM-ingestion stats of the
  /// paper) after loading.
  bool collect_base_stats = true;
};

/// Row-count schedule derived from `sf` (exposed for tests).
struct TpchCardinalities {
  uint64_t region = 5;
  uint64_t nation = 25;
  uint64_t supplier = 0;
  uint64_t customer = 0;
  uint64_t part = 0;
  uint64_t partsupp = 0;
  uint64_t orders = 0;
  uint64_t lineitem = 0;
};
TpchCardinalities ComputeTpchCardinalities(double sf);

/// Creates and loads the eight TPC-H tables into the engine's catalog,
/// registers the workload UDFs (myyear, mysub) and collects base
/// statistics. Dates are yyyymmdd int64. The generator plants the
/// correlations the paper's modified queries exploit:
///  - o_orderstatus is correlated with o_orderdate (status 'F' for old
///    orders), so Q8's two orders predicates break the independence
///    assumption;
///  - (l_partkey, l_suppkey) pairs respect the partsupp relationship, so
///    Q9's two-column partsupp join is a true composite-key join.
Status LoadTpch(Engine* engine, const TpchOptions& options);

/// Secondary indexes for the Figure-8 INLJ experiments: lineitem(l_partkey)
/// and lineitem(l_suppkey).
Status CreateTpchIndexes(Engine* engine);

/// SQL text of the paper's modified queries (Appendix, Figure 10).
std::string TpchQ8Sql();
std::string TpchQ9Sql();

/// Parse + bind the queries against the engine's catalog.
Result<QuerySpec> TpchQ8(Engine* engine);
Result<QuerySpec> TpchQ9(Engine* engine);

}  // namespace dynopt

#endif  // DYNOPT_WORKLOADS_TPCH_H_
