#include "workloads/tpch.h"

#include <cmath>
#include <vector>

#include "common/random.h"
#include "sql/binder.h"
#include "storage/schema.h"

namespace dynopt {

namespace {

constexpr int64_t kDateLo = 19920101;

/// yyyymmdd arithmetic: day index (0-based from 1992-01-01, 30-day months,
/// 360-day years — a simplification that keeps year/month extraction exact).
int64_t DayToDate(int64_t day) {
  int64_t year = 1992 + day / 360;
  int64_t rem = day % 360;
  int64_t month = rem / 30 + 1;
  int64_t dom = rem % 30 + 1;
  return year * 10000 + month * 100 + dom;
}

const char* const kTypes[] = {
    "SMALL PLATED COPPER", "LARGE BRUSHED STEEL", "MEDIUM ANODIZED TIN",
    "SMALL POLISHED NICKEL", "LARGE PLATED BRASS", "MEDIUM BURNISHED COPPER",
    "PROMO PLATED STEEL", "ECONOMY ANODIZED BRASS", "STANDARD POLISHED TIN",
    "PROMO BURNISHED NICKEL", "SMALL ANODIZED STEEL", "LARGE POLISHED COPPER",
    "ECONOMY BRUSHED TIN", "STANDARD PLATED NICKEL", "MEDIUM POLISHED BRASS",
    "PROMO ANODIZED COPPER", "SMALL BURNISHED BRASS", "LARGE ANODIZED TIN",
    "ECONOMY POLISHED STEEL", "STANDARD BURNISHED COPPER"};
constexpr size_t kNumTypes = sizeof(kTypes) / sizeof(kTypes[0]);

const char* const kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                "MIDDLE EAST"};

const char* const kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                 "HOUSEHOLD", "MACHINERY"};

Status RegisterTpchUdfs(UdfRegistry* udfs) {
  // myyear(yyyymmdd) -> year. Opaque to every optimizer except the dynamic
  // one, which executes it early.
  Status st = udfs->Register("myyear", [](const std::vector<Value>& args) {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value(args[0].AsInt64() / 10000);
  });
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
  // myym(yyyymmdd) -> yyyymm. A single equality on this UDF is highly
  // selective (~1/72 of six years of orders); a blind optimizer assumes
  // 1/10, so it believes the filtered orders too large to broadcast — the
  // exact missed-broadcast failure mode Section 3 of the paper calls out.
  st = udfs->Register("myym", [](const std::vector<Value>& args) {
    if (args.empty() || args[0].is_null()) return Value::Null();
    return Value(args[0].AsInt64() / 100);
  });
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
  // mysub(brand) -> "#d": the '#' plus the first digit of the brand id.
  st = udfs->Register("mysub", [](const std::vector<Value>& args) {
    if (args.empty() || args[0].is_null()) return Value::Null();
    const std::string& s = args[0].AsString();
    size_t pos = s.find('#');
    if (pos == std::string::npos || pos + 1 >= s.size()) {
      return Value(std::string(""));
    }
    return Value(s.substr(pos, 2));
  });
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
  return Status::OK();
}

std::vector<std::string> AllColumns(const Table& table) {
  std::vector<std::string> cols;
  for (size_t i = 0; i < table.schema().num_fields(); ++i) {
    cols.push_back(table.schema().field(i).name);
  }
  return cols;
}

}  // namespace

TpchCardinalities ComputeTpchCardinalities(double sf) {
  TpchCardinalities c;
  c.supplier = static_cast<uint64_t>(std::llround(100 * sf));
  c.customer = static_cast<uint64_t>(std::llround(1500 * sf));
  c.part = static_cast<uint64_t>(std::llround(2000 * sf));
  c.partsupp = c.part * 4;  // Four suppliers per part, per the TPC-H spec.
  c.orders = static_cast<uint64_t>(std::llround(15000 * sf));
  c.lineitem = 0;  // Determined by per-order line counts during generation.
  return c;
}

Status LoadTpch(Engine* engine, const TpchOptions& options) {
  DYNOPT_RETURN_IF_ERROR(RegisterTpchUdfs(&engine->udfs()));
  Catalog& catalog = engine->catalog();
  const size_t parts = engine->cluster().num_nodes;
  Rng rng(options.seed);
  TpchCardinalities n = ComputeTpchCardinalities(options.sf);

  // --- region -------------------------------------------------------------
  {
    auto t = std::make_shared<Table>(
        "region",
        Schema({{"r_regionkey", ValueType::kInt64},
                {"r_name", ValueType::kString}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"r_regionkey"}));
    for (int64_t i = 0; i < 5; ++i) {
      t->AppendRow({Value(i), Value(kRegions[i])});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- nation -------------------------------------------------------------
  {
    auto t = std::make_shared<Table>(
        "nation",
        Schema({{"n_nationkey", ValueType::kInt64},
                {"n_name", ValueType::kString},
                {"n_regionkey", ValueType::kInt64}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"n_nationkey"}));
    for (int64_t i = 0; i < 25; ++i) {
      t->AppendRow({Value(i), Value("NATION_" + std::to_string(i)),
                    Value(i % 5)});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- supplier -----------------------------------------------------------
  {
    auto t = std::make_shared<Table>(
        "supplier",
        Schema({{"s_suppkey", ValueType::kInt64},
                {"s_name", ValueType::kString},
                {"s_nationkey", ValueType::kInt64},
                {"s_acctbal", ValueType::kDouble}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"s_suppkey"}));
    for (uint64_t i = 0; i < n.supplier; ++i) {
      t->AppendRow({Value(static_cast<int64_t>(i)),
                    Value("Supplier#" + std::to_string(i)),
                    Value(rng.NextInt64(0, 24)),
                    Value(rng.NextDouble() * 10000.0)});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- customer -----------------------------------------------------------
  {
    auto t = std::make_shared<Table>(
        "customer",
        Schema({{"c_custkey", ValueType::kInt64},
                {"c_nationkey", ValueType::kInt64},
                {"c_mktsegment", ValueType::kString},
                {"c_acctbal", ValueType::kDouble}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"c_custkey"}));
    for (uint64_t i = 0; i < n.customer; ++i) {
      t->AppendRow({Value(static_cast<int64_t>(i)), Value(rng.NextInt64(0, 24)),
                    Value(kSegments[rng.NextUint64(5)]),
                    Value(rng.NextDouble() * 10000.0)});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- part ---------------------------------------------------------------
  {
    auto t = std::make_shared<Table>(
        "part",
        Schema({{"p_partkey", ValueType::kInt64},
                {"p_name", ValueType::kString},
                {"p_brand", ValueType::kString},
                {"p_type", ValueType::kString},
                {"p_size", ValueType::kInt64}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"p_partkey"}));
    for (uint64_t i = 0; i < n.part; ++i) {
      // Brand#xy with x in 1..5, y in 1..5 — mysub() extracts "#x". The
      // first digit is heavily skewed toward 3 (55%), so the true
      // selectivity of Q9's mysub(p_brand) = '#3' is ~0.55 while a blind
      // optimizer assumes the Selinger default of 0.1.
      int64_t bx;
      if (rng.NextBool(0.55)) {
        bx = 3;
      } else {
        const int64_t others[] = {1, 2, 4, 5};
        bx = others[rng.NextUint64(4)];
      }
      int64_t by = rng.NextInt64(1, 5);
      t->AppendRow({Value(static_cast<int64_t>(i)),
                    Value("part_" + std::to_string(i)),
                    Value("Brand#" + std::to_string(bx) + std::to_string(by)),
                    Value(kTypes[rng.NextUint64(kNumTypes)]),
                    Value(rng.NextInt64(1, 50))});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- partsupp: exactly 4 suppliers per part ------------------------------
  {
    auto t = std::make_shared<Table>(
        "partsupp",
        Schema({{"ps_partkey", ValueType::kInt64},
                {"ps_suppkey", ValueType::kInt64},
                {"ps_availqty", ValueType::kInt64},
                {"ps_supplycost", ValueType::kDouble}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"ps_partkey"}));
    for (uint64_t p = 0; p < n.part; ++p) {
      for (int s = 0; s < 4; ++s) {
        int64_t suppkey =
            static_cast<int64_t>((p + static_cast<uint64_t>(s) *
                                          (n.supplier / 4 + 1)) %
                                 n.supplier);
        t->AppendRow({Value(static_cast<int64_t>(p)), Value(suppkey),
                      Value(rng.NextInt64(1, 9999)),
                      Value(rng.NextDouble() * 1000.0)});
      }
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- orders: o_orderstatus correlated with o_orderdate -------------------
  std::vector<int64_t> order_dates(n.orders);
  {
    auto t = std::make_shared<Table>(
        "orders",
        Schema({{"o_orderkey", ValueType::kInt64},
                {"o_custkey", ValueType::kInt64},
                {"o_orderdate", ValueType::kInt64},
                {"o_orderstatus", ValueType::kString},
                {"o_orderpriority", ValueType::kString},
                {"o_clerk", ValueType::kString},
                {"o_totalprice", ValueType::kDouble}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"o_orderkey"}));
    const char* const kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                       "4-NOT SPECIFIED", "5-LOW"};
    for (uint64_t i = 0; i < n.orders; ++i) {
      int64_t day = rng.NextInt64(0, 6 * 360 - 1);  // 1992-01-01..1997-12-30.
      int64_t date = DayToDate(day);
      order_dates[i] = date;
      // Correlation: orders before April 1995 are almost always finished
      // ('F'), later ones open ('O') — with 2% noise. The independence
      // assumption badly mis-estimates (date-range AND status) conjunctions
      // like Q8's (o_orderdate BETWEEN 1995..1996 AND o_orderstatus = 'F'):
      // true joint selectivity ~0.05, independence predicts ~0.17.
      bool old_order = date < 19950401;
      bool finished = rng.NextBool(old_order ? 0.98 : 0.02);
      t->AppendRow({Value(static_cast<int64_t>(i)),
                    Value(rng.NextInt64(0, static_cast<int64_t>(n.customer) - 1)),
                    Value(date), Value(finished ? "F" : "O"),
                    Value(kPriorities[rng.NextUint64(5)]),
                    Value("Clerk#" + std::to_string(rng.NextInt64(0, 999))),
                    Value(rng.NextDouble() * 100000.0)});
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  // --- lineitem: FK pairs into partsupp, 1-7 lines per order ---------------
  {
    auto t = std::make_shared<Table>(
        "lineitem",
        Schema({{"l_orderkey", ValueType::kInt64},
                {"l_linenumber", ValueType::kInt64},
                {"l_partkey", ValueType::kInt64},
                {"l_suppkey", ValueType::kInt64},
                {"l_quantity", ValueType::kInt64},
                {"l_extendedprice", ValueType::kDouble},
                {"l_shipdate", ValueType::kInt64}}),
        parts);
    DYNOPT_RETURN_IF_ERROR(t->SetPartitionKey({"l_orderkey"}));
    for (uint64_t o = 0; o < n.orders; ++o) {
      int64_t lines = rng.NextInt64(1, 7);
      for (int64_t ln = 0; ln < lines; ++ln) {
        int64_t partkey =
            rng.NextInt64(0, static_cast<int64_t>(n.part) - 1);
        // Pick one of the part's four suppliers so (l_partkey, l_suppkey)
        // exists in partsupp (Q9's composite join).
        int64_t slot = rng.NextInt64(0, 3);
        int64_t suppkey = static_cast<int64_t>(
            (static_cast<uint64_t>(partkey) +
             static_cast<uint64_t>(slot) * (n.supplier / 4 + 1)) %
            n.supplier);
        t->AppendRow({Value(static_cast<int64_t>(o)), Value(ln),
                      Value(partkey), Value(suppkey),
                      Value(rng.NextInt64(1, 50)),
                      Value(rng.NextDouble() * 10000.0),
                      Value(order_dates[o])});
      }
    }
    DYNOPT_RETURN_IF_ERROR(catalog.RegisterTable(t));
  }

  if (options.collect_base_stats) {
    for (const char* name : {"region", "nation", "supplier", "customer",
                             "part", "partsupp", "orders", "lineitem"}) {
      DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> t,
                              catalog.GetTable(name));
      DYNOPT_RETURN_IF_ERROR(engine->CollectBaseStats(name, AllColumns(*t)));
    }
  }
  (void)kDateLo;
  return Status::OK();
}

Status CreateTpchIndexes(Engine* engine) {
  DYNOPT_ASSIGN_OR_RETURN(std::shared_ptr<Table> lineitem,
                          engine->catalog().GetTable("lineitem"));
  Status st = lineitem->CreateSecondaryIndex("l_partkey");
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
  st = lineitem->CreateSecondaryIndex("l_suppkey");
  if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
  return Status::OK();
}

std::string TpchQ8Sql() {
  return R"(SELECT o.o_orderdate, l.l_extendedprice, n2.n_name
FROM part p, supplier s, lineitem l, orders o, customer c,
     nation n1, nation n2, region r
WHERE p.p_partkey = l.l_partkey
  AND s.s_suppkey = l.l_suppkey
  AND l.l_orderkey = o.o_orderkey
  AND o.o_custkey = c.c_custkey
  AND c.c_nationkey = n1.n_nationkey
  AND n1.n_regionkey = r.r_regionkey
  AND r.r_name = 'ASIA'
  AND s.s_nationkey = n2.n_nationkey
  AND o.o_orderdate BETWEEN 19950101 AND 19961231
  AND o.o_orderstatus = 'F'
  AND p.p_type = 'SMALL PLATED COPPER')";
}

std::string TpchQ9Sql() {
  return R"(SELECT n.n_name, l.l_extendedprice, l.l_quantity, ps.ps_supplycost
FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
WHERE s.s_suppkey = l.l_suppkey
  AND ps.ps_suppkey = l.l_suppkey
  AND ps.ps_partkey = l.l_partkey
  AND p.p_partkey = l.l_partkey
  AND o.o_orderkey = l.l_orderkey
  AND myym(o.o_orderdate) = 199603
  AND s.s_nationkey = n.n_nationkey
  AND mysub(p.p_brand) = '#3')";
}

Result<QuerySpec> TpchQ8(Engine* engine) {
  return ParseAndBind(TpchQ8Sql(), engine->catalog());
}

Result<QuerySpec> TpchQ9(Engine* engine) {
  return ParseAndBind(TpchQ9Sql(), engine->catalog());
}

}  // namespace dynopt
