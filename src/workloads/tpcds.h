#ifndef DYNOPT_WORKLOADS_TPCDS_H_
#define DYNOPT_WORKLOADS_TPCDS_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/engine.h"
#include "plan/query_spec.h"

namespace dynopt {

/// Generator knobs for the TPC-DS-like subset (the six tables Q17/Q50
/// touch). `sf` scales fact-table row counts linearly; dimensions stay
/// (mostly) fixed like in the official schema.
struct TpcdsOptions {
  double sf = 1.0;
  uint64_t seed = 7;
  bool collect_base_stats = true;
  /// Zipf exponent of customer activity in store_sales — the skew that
  /// makes sampled/naive estimates of the fact-to-fact joins unreliable.
  double customer_skew = 1.1;
};

struct TpcdsCardinalities {
  uint64_t date_dim = 1800;  ///< 5 years of (360-day) days, 1998-2002.
  uint64_t store = 0;
  uint64_t item = 0;
  uint64_t customers = 0;  ///< Customer id domain (no customer table needed).
  uint64_t store_sales = 0;
  uint64_t store_returns = 0;  ///< ~10% of sales.
  uint64_t catalog_sales = 0;
};
TpcdsCardinalities ComputeTpcdsCardinalities(double sf);

/// Creates and loads date_dim, store, item, store_sales, store_returns and
/// catalog_sales. The generator plants the paper-relevant structure:
///  - store_returns rows reference real (item, ticket, customer) triples of
///    store_sales (the three-column fact-to-fact join of Q17/Q50);
///  - catalog_sales partially reuses returned (customer, item) pairs so the
///    non-key sr-cs join of Q17 has skewed, correlated fan-out;
///  - customer activity is Zipf-skewed.
Status LoadTpcds(Engine* engine, const TpcdsOptions& options);

/// Secondary indexes for Figure 8: the date FKs of the three fact tables
/// (ss_sold_date_sk, sr_returned_date_sk, cs_sold_date_sk).
Status CreateTpcdsIndexes(Engine* engine);

/// SQL text of the paper's queries (Appendix, Figure 9). Q50's dimension
/// filter uses parameters $moy/$year ("parameterized values").
std::string TpcdsQ17Sql();
std::string TpcdsQ50Sql();

Result<QuerySpec> TpcdsQ17(Engine* engine);
/// moy in [8,10], year in [1998,2000] per the paper's myrand ranges.
Result<QuerySpec> TpcdsQ50(Engine* engine, int64_t moy, int64_t year);

}  // namespace dynopt

#endif  // DYNOPT_WORKLOADS_TPCDS_H_
