#ifndef DYNOPT_SYS_SYSTEM_TABLES_H_
#define DYNOPT_SYS_SYSTEM_TABLES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"

namespace dynopt {

class Engine;

/// Names of every sys.* virtual table ("sys.metrics", "sys.queries", ...).
std::vector<std::string> SystemTableNames();

/// Materializes one sys.* table from `engine`'s live state right now; the
/// returned Table is an ordinary in-memory snapshot (single partition, no
/// stats), so the rest of the stack — planner, executor, SQL shell — treats
/// it like any other dataset. Scanning it is metered at zero simulated cost
/// (see JobExecutor::ExecScan). Unknown names => NotFound.
///
/// Tables:
///   sys.metrics     counters/gauges/histograms of the engine registry,
///                   with p50/p90/p99 for histograms
///   sys.queries     active (status "running") + archived queries: resource
///                   summary, fingerprint, critical path, regression
///   sys.admission   per-priority queue depth + engine-wide admission
///                   counters (admitted/shed/rejected/timeouts/degraded)
///   sys.memory      the engine -> query -> operator MemoryTracker tree
///   sys.error_stats cross-query q-error memory (opt/error_stats.h)
///   sys.sketches    per (table, column) join-key sketches: rows, bloom
///                   bytes, AGMS dimensions
///   sys.decisions   per-archived-query decision log with est/actual rows,
///                   q-error, provenance, consumed prior, divergence flag
Result<std::shared_ptr<Table>> MaterializeSystemTable(Engine* engine,
                                                      const std::string& name);

/// Installs the sys.* SystemTableProvider into `engine`'s catalog (the
/// provider reads the engine's live state on every scan; `engine` owns the
/// catalog, so the borrowed pointer cannot dangle). Idempotent. Does not
/// flip any cluster knob — without introspection.enabled, sys.queries /
/// sys.decisions are simply empty.
void InstallSystemTables(Engine* engine);

/// Turns the introspection plane on: sets
/// mutable_cluster().introspection.enabled (query profiles start archiving)
/// and installs the sys.* catalog provider.
void EnableIntrospection(Engine* engine);

}  // namespace dynopt

#endif  // DYNOPT_SYS_SYSTEM_TABLES_H_
