#include "sys/system_tables.h"

#include <algorithm>
#include <utility>

#include "common/metrics_registry.h"
#include "common/query_context.h"
#include "exec/engine.h"
#include "opt/error_stats.h"
#include "opt/profile_archive.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dynopt {

namespace {

Value I(uint64_t v) { return Value(static_cast<int64_t>(v)); }
Value I(int64_t v) { return Value(v); }
Value I(int v) { return Value(static_cast<int64_t>(v)); }
Value D(double v) { return Value(v); }
Value S(std::string v) { return Value(std::move(v)); }
Value B(bool v) { return Value(v); }

/// Every sys table is one in-memory partition: the rows already live on
/// this node (they are snapshots of coordinator state), and a single
/// partition keeps scans deterministic.
std::shared_ptr<Table> MakeTable(const std::string& name,
                                 std::vector<Field> fields) {
  return std::make_shared<Table>(name, Schema(std::move(fields)), 1);
}

std::shared_ptr<Table> BuildMetrics(Engine* engine) {
  auto table = MakeTable("sys.metrics", {{"kind", ValueType::kString},
                                         {"name", ValueType::kString},
                                         {"value", ValueType::kInt64},
                                         {"sum", ValueType::kInt64},
                                         {"p50", ValueType::kInt64},
                                         {"p90", ValueType::kInt64},
                                         {"p99", ValueType::kInt64}});
  for (const MetricSample& m : engine->metrics_registry().Samples()) {
    table->AppendRow({S(m.kind), S(m.name), I(m.value), I(m.sum), I(m.p50),
                      I(m.p90), I(m.p99)});
  }
  return table;
}

void AppendQueryRow(Table* table, const ArchivedQuery& q,
                    const std::string& status) {
  table->AppendRow({I(q.query_id), S(q.label), S(q.optimizer), S(status),
                    S(q.priority), D(q.queue_wait_seconds),
                    I(q.peak_memory_bytes), I(q.spilled_bytes), I(q.retries),
                    D(q.sim_seconds), D(q.wall_seconds), S(q.fingerprint),
                    S(q.critical_path), B(q.regressed), S(q.regression)});
}

std::shared_ptr<Table> BuildQueries(Engine* engine) {
  auto table =
      MakeTable("sys.queries", {{"query_id", ValueType::kInt64},
                                {"label", ValueType::kString},
                                {"strategy", ValueType::kString},
                                {"status", ValueType::kString},
                                {"priority", ValueType::kString},
                                {"queue_wait_seconds", ValueType::kDouble},
                                {"peak_memory_bytes", ValueType::kInt64},
                                {"spilled_bytes", ValueType::kInt64},
                                {"retries", ValueType::kInt64},
                                {"sim_seconds", ValueType::kDouble},
                                {"wall_seconds", ValueType::kDouble},
                                {"fingerprint", ValueType::kString},
                                {"critical_path", ValueType::kString},
                                {"regressed", ValueType::kBool},
                                {"regression", ValueType::kString}});
  ProfileArchive* archive = EngineProfileArchive(engine);
  if (archive == nullptr) return table;  // Introspection off: empty table.
  for (const ActiveQueryInfo& a : archive->ActiveSnapshot()) {
    ArchivedQuery q;
    q.query_id = a.query_id;
    q.label = a.label;
    q.optimizer = a.optimizer;
    q.fingerprint = a.fingerprint;
    q.priority = a.priority;
    AppendQueryRow(table.get(), q, "running");
  }
  for (const ArchivedQuery& q : archive->Snapshot()) {
    AppendQueryRow(table.get(), q, "completed");
  }
  return table;
}

std::shared_ptr<Table> BuildAdmission(Engine* engine) {
  auto table =
      MakeTable("sys.admission", {{"priority", ValueType::kString},
                                  {"queued", ValueType::kInt64},
                                  {"running", ValueType::kInt64},
                                  {"admitted", ValueType::kInt64},
                                  {"shed", ValueType::kInt64},
                                  {"rejected", ValueType::kInt64},
                                  {"timeouts", ValueType::kInt64},
                                  {"degraded_memory", ValueType::kInt64},
                                  {"degraded_strategy", ValueType::kInt64}});
  AdmissionController& ac = engine->admission();
  MetricsRegistry& reg = engine->metrics_registry();
  // Queue depth is per class; running and the lifetime counters are
  // engine-wide and repeat on every row (one row per priority class).
  for (int p = kNumQueryPriorities - 1; p >= 0; --p) {
    const auto prio = static_cast<QueryPriority>(p);
    table->AppendRow(
        {S(QueryPriorityName(prio)), I(ac.queued_in_class(prio)),
         I(ac.running()), I(reg.counter("admission.admitted")->value()),
         I(reg.counter("admission.shed")->value()),
         I(reg.counter("admission.rejected")->value()),
         I(reg.counter("admission.timeouts")->value()),
         I(reg.counter("admission.degraded_memory")->value()),
         I(reg.counter("admission.degraded_strategy")->value())});
  }
  return table;
}

std::shared_ptr<Table> BuildMemory(Engine* engine) {
  auto table = MakeTable("sys.memory", {{"label", ValueType::kString},
                                        {"depth", ValueType::kInt64},
                                        {"parent", ValueType::kString},
                                        {"used_bytes", ValueType::kInt64},
                                        {"peak_bytes", ValueType::kInt64},
                                        {"budget_bytes", ValueType::kInt64}});
  engine->memory().VisitTree([&](const MemoryTracker& t, int depth) {
    table->AppendRow(
        {S(t.label()), I(depth),
         S(t.parent() != nullptr ? t.parent()->label() : std::string()),
         I(t.used()), I(t.peak()), I(t.budget())});
  });
  return table;
}

std::shared_ptr<Table> BuildErrorStats(Engine* engine) {
  auto table = MakeTable("sys.error_stats", {{"key", ValueType::kString},
                                             {"count", ValueType::kInt64},
                                             {"geo_mean_q", ValueType::kDouble},
                                             {"max_q", ValueType::kDouble}});
  ErrorStatsStore* store = EngineErrorStats(engine);
  if (store == nullptr) return table;  // risk.use_error_store off: empty.
  for (const auto& [key, e] : store->Entries()) {
    table->AppendRow({S(key), I(e.count), D(e.GeoMeanQ()), D(e.max_q)});
  }
  return table;
}

std::shared_ptr<Table> BuildSketches(Engine* engine) {
  auto table =
      MakeTable("sys.sketches", {{"table_name", ValueType::kString},
                                 {"column_name", ValueType::kString},
                                 {"rows", ValueType::kInt64},
                                 {"null_keys", ValueType::kInt64},
                                 {"bloom_bytes", ValueType::kInt64},
                                 {"agms_depth", ValueType::kInt64},
                                 {"agms_width", ValueType::kInt64}});
  SketchManager& sketches = engine->sketches();
  std::vector<std::string> keys = sketches.Keys();
  std::sort(keys.begin(), keys.end());
  for (const std::string& key : keys) {
    const size_t bar = key.find('|');
    if (bar == std::string::npos) continue;
    const std::string tbl = key.substr(0, bar);
    const std::string col = key.substr(bar + 1);
    auto sk = sketches.Get(tbl, col);
    if (sk == nullptr) continue;  // Removed since Keys(); skip.
    table->AppendRow({S(tbl), S(col), I(sk->rows), I(sk->null_keys),
                      I(sk->bloom.SizeBytes()), I(sk->agms.depth()),
                      I(sk->agms.width())});
  }
  return table;
}

std::shared_ptr<Table> BuildDecisions(Engine* engine) {
  auto table =
      MakeTable("sys.decisions", {{"query_id", ValueType::kInt64},
                                  {"decision_id", ValueType::kInt64},
                                  {"point", ValueType::kString},
                                  {"chosen", ValueType::kString},
                                  {"estimated_rows", ValueType::kDouble},
                                  {"actual_rows", ValueType::kDouble},
                                  {"q_error", ValueType::kDouble},
                                  {"est_src", ValueType::kString},
                                  {"prior_key", ValueType::kString},
                                  {"prior_factor", ValueType::kDouble},
                                  {"diverged", ValueType::kBool}});
  ProfileArchive* archive = EngineProfileArchive(engine);
  if (archive == nullptr) return table;
  for (const ArchivedQuery& q : archive->Snapshot()) {
    if (q.profile == nullptr) continue;
    for (const PlanDecision& d : q.profile->decisions.decisions()) {
      table->AppendRow({I(q.query_id), I(d.id), S(d.point), S(d.chosen),
                        D(d.estimated_rows), D(d.actual_rows), D(d.QError()),
                        S(d.provenance), S(d.prior_key), D(d.prior_factor),
                        B(q.regressed && d.id == q.first_divergent_index)});
    }
  }
  return table;
}

/// Catalog hook resolving sys.* names against the owning engine's live
/// state. Stateless beyond the engine pointer; a fresh snapshot per scan.
class EngineSystemTableProvider : public SystemTableProvider {
 public:
  explicit EngineSystemTableProvider(Engine* engine) : engine_(engine) {}

  bool Handles(const std::string& name) const override {
    const auto names = SystemTableNames();
    return std::find(names.begin(), names.end(), name) != names.end();
  }

  Result<std::shared_ptr<Table>> Materialize(
      const std::string& name) const override {
    return MaterializeSystemTable(engine_, name);
  }

  std::vector<std::string> Names() const override {
    return SystemTableNames();
  }

 private:
  Engine* engine_;  ///< Borrowed; the engine owns the catalog owning us.
};

}  // namespace

std::vector<std::string> SystemTableNames() {
  return {"sys.metrics",     "sys.queries",  "sys.admission", "sys.memory",
          "sys.error_stats", "sys.sketches", "sys.decisions"};
}

Result<std::shared_ptr<Table>> MaterializeSystemTable(Engine* engine,
                                                      const std::string& name) {
  if (engine == nullptr) {
    return Status::Internal("system tables need an engine");
  }
  if (name == "sys.metrics") return BuildMetrics(engine);
  if (name == "sys.queries") return BuildQueries(engine);
  if (name == "sys.admission") return BuildAdmission(engine);
  if (name == "sys.memory") return BuildMemory(engine);
  if (name == "sys.error_stats") return BuildErrorStats(engine);
  if (name == "sys.sketches") return BuildSketches(engine);
  if (name == "sys.decisions") return BuildDecisions(engine);
  return Status::NotFound("unknown system table " + name);
}

void InstallSystemTables(Engine* engine) {
  engine->catalog().SetSystemTableProvider(
      std::make_shared<EngineSystemTableProvider>(engine));
}

void EnableIntrospection(Engine* engine) {
  engine->mutable_cluster().introspection.enabled = true;
  InstallSystemTables(engine);
}

}  // namespace dynopt
