#ifndef DYNOPT_STORAGE_SERDE_H_
#define DYNOPT_STORAGE_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace dynopt {

/// Binary row serialization for materialized intermediate results. The
/// paper's system stores each re-optimization point's output "in a
/// temporary file"; this is the on-disk format: a 1-byte type tag per
/// value, little-endian fixed-width payloads, length-prefixed strings,
/// rows prefixed by their value count.
///
/// The format is self-describing per value (schemas of intermediates are
/// inferred from data on read-back) and append-friendly.

/// Appends the encoding of `v` to `out`.
void EncodeValue(const Value& v, std::string* out);

/// Decodes one value starting at `*offset`; advances the offset.
Result<Value> DecodeValue(const std::string& buffer, size_t* offset);

/// Appends the encoding of `row` to `out`.
void EncodeRow(const Row& row, std::string* out);

/// Decodes one row starting at `*offset`; advances the offset.
Result<Row> DecodeRow(const std::string& buffer, size_t* offset);

/// Serializes all rows into one buffer (count-prefixed).
std::string EncodeRows(const std::vector<Row>& rows);

/// Inverse of EncodeRows.
Result<std::vector<Row>> DecodeRows(const std::string& buffer);

/// Serializes rows into the checksummed block format files use: a 4-byte
/// magic ("DRB2"), the varint total row count, then blocks of up to 1024
/// rows, each carrying (varint row count, varint payload size, fixed64
/// payload checksum, payload of EncodeRow records). Any single flipped
/// byte is detectable: payload flips break the block checksum, header
/// flips break framing (offset/count mismatches), and the decoder verifies
/// both per block and for the whole buffer.
std::string EncodeRowsChecksummed(const std::vector<Row>& rows);

/// Inverse of EncodeRowsChecksummed. Every framing or checksum violation
/// returns kDataCorruption (retryable by re-materializing the data).
Result<std::vector<Row>> DecodeRowsChecksummed(const std::string& buffer);

/// Writes `rows` to `path` (EncodeRowsChecksummed format), overwriting.
Status WriteRowsFile(const std::string& path, const std::vector<Row>& rows);

/// Reads a file written by WriteRowsFile. kNotFound when the file is
/// missing; kDataCorruption when its contents fail framing or checksum
/// verification.
Result<std::vector<Row>> ReadRowsFile(const std::string& path);

/// Flips one bit of the byte at `offset % file size` in `path` — the fault
/// injector's physical corruption primitive (and available to tests).
Status CorruptByteInFile(const std::string& path, uint64_t offset);

/// Deletes every regular file directly under `dir` whose name starts with
/// `prefix`; returns how many were removed. A missing or unreadable
/// directory removes nothing. The spill janitor: recovery sweeps a query's
/// grace-join spill files ("__spill_q<id>_*") with this after cancellation
/// or terminal failure, and tests assert zero leaks with the counter below.
int RemoveFilesWithPrefix(const std::string& dir, const std::string& prefix);

/// Counts regular files directly under `dir` whose name starts with
/// `prefix` (0 for a missing directory).
int CountFilesWithPrefix(const std::string& dir, const std::string& prefix);

}  // namespace dynopt

#endif  // DYNOPT_STORAGE_SERDE_H_
