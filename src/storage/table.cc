#include "storage/table.h"

#include "common/logging.h"

namespace dynopt {

SecondaryIndex::SecondaryIndex(std::string column, int column_index,
                               size_t num_partitions)
    : column_(std::move(column)),
      column_index_(column_index),
      partitions_(num_partitions) {}

void SecondaryIndex::Insert(const Value& key, size_t partition,
                            uint32_t row_offset) {
  partitions_[partition][key].push_back(row_offset);
  ++num_entries_;
}

const std::vector<uint32_t>* SecondaryIndex::Lookup(size_t partition,
                                                    const Value& key) const {
  const auto& map = partitions_[partition];
  auto it = map.find(key);
  return it == map.end() ? nullptr : &it->second;
}

Table::Table(std::string name, Schema schema, size_t num_partitions)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      partitions_(num_partitions) {
  DYNOPT_CHECK(num_partitions > 0);
}

Status Table::SetPartitionKey(const std::vector<std::string>& columns) {
  if (num_rows_ > 0) {
    return Status::InvalidArgument(
        "partition key must be set before loading rows into " + name_);
  }
  std::vector<int> indices;
  for (const auto& col : columns) {
    int idx = schema_.FieldIndex(col);
    if (idx < 0) {
      return Status::NotFound("partition key column " + col +
                              " not in schema of " + name_);
    }
    indices.push_back(idx);
  }
  partition_key_ = columns;
  partition_key_indices_ = std::move(indices);
  return Status::OK();
}

void Table::AppendRow(Row row) {
  DYNOPT_CHECK(row.size() == schema_.num_fields());
  size_t target;
  if (!partition_key_indices_.empty()) {
    target = static_cast<size_t>(HashRowKey(row, partition_key_indices_) %
                                 partitions_.size());
  } else {
    target = static_cast<size_t>(round_robin_next_++ % partitions_.size());
  }
  total_bytes_ += RowSizeBytes(row);
  ++num_rows_;
  partitions_[target].push_back(std::move(row));
}

void Table::AppendRowToPartition(size_t partition, Row row) {
  DYNOPT_CHECK(partition < partitions_.size());
  DYNOPT_CHECK(row.size() == schema_.num_fields());
  total_bytes_ += RowSizeBytes(row);
  ++num_rows_;
  partitions_[partition].push_back(std::move(row));
}

Status Table::CreateSecondaryIndex(const std::string& column) {
  int idx = schema_.FieldIndex(column);
  if (idx < 0) {
    return Status::NotFound("index column " + column + " not in schema of " +
                            name_);
  }
  if (indexes_.count(column) > 0) {
    return Status::AlreadyExists("index on " + name_ + "." + column);
  }
  auto index =
      std::make_unique<SecondaryIndex>(column, idx, partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const auto& rows = partitions_[p];
    for (size_t r = 0; r < rows.size(); ++r) {
      index->Insert(rows[r][static_cast<size_t>(idx)], p,
                    static_cast<uint32_t>(r));
    }
  }
  indexes_[column] = std::move(index);
  return Status::OK();
}

bool Table::HasSecondaryIndex(const std::string& column) const {
  return indexes_.count(column) > 0;
}

const SecondaryIndex* Table::GetSecondaryIndex(
    const std::string& column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Table::IndexedColumns() const {
  std::vector<std::string> cols;
  cols.reserve(indexes_.size());
  for (const auto& [col, _] : indexes_) cols.push_back(col);
  return cols;
}

}  // namespace dynopt
