#include "storage/catalog.h"

namespace dynopt {

Status Catalog::RegisterTable(std::shared_ptr<Table> table) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table " + name + " already registered");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<std::shared_ptr<Table>> Catalog::GetTable(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not in catalog");
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) > 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not in catalog");
  }
  tables_.erase(it);
  return Status::OK();
}

std::string Catalog::UniqueTempName(const std::string& prefix) {
  return "__tmp_" + prefix + "_" +
         std::to_string(temp_counter_.fetch_add(1));
}

bool Catalog::IsTempName(const std::string& name) {
  return name.rfind("__tmp_", 0) == 0;
}

std::vector<std::string> Catalog::DropTempTablesWithPrefix(
    const std::string& prefix) {
  const std::string full_prefix = "__tmp_" + prefix;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> dropped;
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (IsTempName(it->first) && it->first.rfind(full_prefix, 0) == 0) {
      dropped.push_back(it->first);
      it = tables_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace dynopt
