#include "storage/catalog.h"

namespace dynopt {

Status Catalog::RegisterTable(std::shared_ptr<Table> table) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& name = table->name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table " + name + " already registered");
  }
  tables_[name] = std::move(table);
  return Status::OK();
}

Result<std::shared_ptr<Table>> Catalog::GetTable(
    const std::string& name) const {
  std::shared_ptr<const SystemTableProvider> provider;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it != tables_.end()) return it->second;
    provider = sys_provider_;
  }
  // Materialize outside the catalog lock: providers read live engine state
  // and may themselves take locks that running queries hold while touching
  // the catalog.
  if (IsSystemName(name) && provider != nullptr && provider->Handles(name)) {
    return provider->Materialize(name);
  }
  return Status::NotFound("table " + name + " not in catalog");
}

bool Catalog::HasTable(const std::string& name) const {
  std::shared_ptr<const SystemTableProvider> provider;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tables_.count(name) > 0) return true;
    provider = sys_provider_;
  }
  return IsSystemName(name) && provider != nullptr && provider->Handles(name);
}

void Catalog::SetSystemTableProvider(
    std::shared_ptr<const SystemTableProvider> p) {
  std::lock_guard<std::mutex> lock(mu_);
  sys_provider_ = std::move(p);
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not in catalog");
  }
  tables_.erase(it);
  return Status::OK();
}

std::string Catalog::UniqueTempName(const std::string& prefix) {
  return "__tmp_" + prefix + "_" +
         std::to_string(temp_counter_.fetch_add(1));
}

bool Catalog::IsTempName(const std::string& name) {
  return name.rfind("__tmp_", 0) == 0;
}

std::vector<std::string> Catalog::DropTempTablesWithPrefix(
    const std::string& prefix) {
  const std::string full_prefix = "__tmp_" + prefix;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> dropped;
  for (auto it = tables_.begin(); it != tables_.end();) {
    if (IsTempName(it->first) && it->first.rfind(full_prefix, 0) == 0) {
      dropped.push_back(it->first);
      it = tables_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_ptr<const SystemTableProvider> provider;
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(tables_.size());
    for (const auto& [name, _] : tables_) names.push_back(name);
    provider = sys_provider_;
  }
  if (provider != nullptr) {
    for (auto& name : provider->Names()) names.push_back(std::move(name));
  }
  return names;
}

}  // namespace dynopt
