#include "storage/csv.h"

#include <cstdio>
#include <cstdlib>

namespace dynopt {

std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell.push_back('"');
          ++i;  // Escaped quote.
        } else {
          quoted = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == delimiter) {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell.push_back(c);
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

Result<Value> ParseCsvCell(const std::string& cell, ValueType type,
                           const CsvOptions& options) {
  if (cell == options.null_token) return Value::Null();
  switch (type) {
    case ValueType::kString:
      return Value(cell);
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool:
      if (cell.empty()) return Value::Null();
      if (cell == "true" || cell == "1" || cell == "t") return Value(true);
      if (cell == "false" || cell == "0" || cell == "f") return Value(false);
      return Status::InvalidArgument("bad bool cell '" + cell + "'");
    case ValueType::kInt64: {
      if (cell.empty()) return Value::Null();
      char* end = nullptr;
      long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad int cell '" + cell + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      if (cell.empty()) return Value::Null();
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("bad double cell '" + cell + "'");
      }
      return Value(v);
    }
  }
  return Status::Internal("unknown value type");
}

Result<std::shared_ptr<Table>> LoadCsvTable(const std::string& name,
                                            const Schema& schema,
                                            const std::string& path,
                                            size_t num_partitions,
                                            const CsvOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::NotFound("cannot open CSV file " + path);
  }
  auto table = std::make_shared<Table>(name, schema, num_partitions);
  if (!options.partition_key.empty()) {
    Status st = table->SetPartitionKey(options.partition_key);
    if (!st.ok()) {
      std::fclose(f);
      return st;
    }
  }

  std::string line;
  char buf[1 << 16];
  size_t line_number = 0;
  bool skipped_header = !options.has_header;
  auto process_line = [&](const std::string& text) -> Status {
    ++line_number;
    if (!skipped_header) {
      skipped_header = true;
      return Status::OK();
    }
    if (text.empty()) return Status::OK();
    std::vector<std::string> cells = SplitCsvLine(text, options.delimiter);
    if (cells.size() != schema.num_fields()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": expected " +
          std::to_string(schema.num_fields()) + " cells, got " +
          std::to_string(cells.size()));
    }
    Row row;
    row.reserve(cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      auto value = ParseCsvCell(cells[c], schema.field(c).type, options);
      if (!value.ok()) {
        return Status::InvalidArgument(path + ":" +
                                       std::to_string(line_number) + ": " +
                                       value.status().message());
      }
      row.push_back(std::move(value).value());
    }
    table->AppendRow(std::move(row));
    return Status::OK();
  };

  Status status = Status::OK();
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line.append(buf);
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      if (!line.empty() && line.back() == '\r') line.pop_back();
      status = process_line(line);
      line.clear();
      if (!status.ok()) break;
    }
  }
  if (status.ok() && !line.empty()) status = process_line(line);
  std::fclose(f);
  if (!status.ok()) return status;
  return table;
}

}  // namespace dynopt
