#ifndef DYNOPT_STORAGE_TABLE_H_
#define DYNOPT_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/schema.h"

namespace dynopt {

/// Hash functor so Value can key unordered containers.
struct ValueHasher {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

/// Secondary hash index over one column of a partitioned table, partitioned
/// the same way as the table itself (each node indexes its local rows, as
/// AsterixDB's local secondary indexes do). Used by the indexed nested loop
/// join: broadcast rows arriving at a node probe the local index.
class SecondaryIndex {
 public:
  SecondaryIndex(std::string column, int column_index, size_t num_partitions);

  /// Registers that row `row_offset` of partition `partition` has `key` in
  /// the indexed column.
  void Insert(const Value& key, size_t partition, uint32_t row_offset);

  /// Local row offsets in `partition` whose indexed column equals `key`;
  /// nullptr when none.
  const std::vector<uint32_t>* Lookup(size_t partition,
                                      const Value& key) const;

  const std::string& column() const { return column_; }
  int column_index() const { return column_index_; }
  uint64_t num_entries() const { return num_entries_; }

 private:
  std::string column_;
  int column_index_;
  uint64_t num_entries_ = 0;
  std::vector<std::unordered_map<Value, std::vector<uint32_t>, ValueHasher>>
      partitions_;
};

/// A base dataset: rows hash-partitioned across the simulated cluster's
/// nodes. Immutable after load (the workloads bulk-load then query, as in
/// the paper's experimental setup).
class Table {
 public:
  Table(std::string name, Schema schema, size_t num_partitions);

  /// Declares the columns rows are hash-partitioned on (typically the
  /// primary key). Must be called before appending rows; when never called,
  /// rows are spread round-robin.
  Status SetPartitionKey(const std::vector<std::string>& columns);

  /// Appends one row, routing it to its home partition.
  void AppendRow(Row row);

  /// Appends one row to an explicit partition — used when materializing an
  /// intermediate dataset so the producing node's placement (and thus any
  /// skew) is preserved.
  void AppendRowToPartition(size_t partition, Row row);

  /// Builds a secondary index over `column` (for the Figure-8 INLJ
  /// experiments). Call after loading completes.
  Status CreateSecondaryIndex(const std::string& column);

  bool HasSecondaryIndex(const std::string& column) const;
  /// nullptr when no index exists on `column`.
  const SecondaryIndex* GetSecondaryIndex(const std::string& column) const;
  std::vector<std::string> IndexedColumns() const;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_partitions() const { return partitions_.size(); }
  const std::vector<Row>& partition(size_t i) const { return partitions_[i]; }
  const std::vector<std::string>& partition_key() const {
    return partition_key_;
  }

  uint64_t NumRows() const { return num_rows_; }
  uint64_t TotalBytes() const { return total_bytes_; }

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::vector<Row>> partitions_;
  std::vector<std::string> partition_key_;
  std::vector<int> partition_key_indices_;
  uint64_t num_rows_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t round_robin_next_ = 0;
  std::map<std::string, std::unique_ptr<SecondaryIndex>> indexes_;
};

}  // namespace dynopt

#endif  // DYNOPT_STORAGE_TABLE_H_
