#ifndef DYNOPT_STORAGE_SCHEMA_H_
#define DYNOPT_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace dynopt {

/// One column of a schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered list of named, typed columns. Column names inside a base table
/// are unqualified ("l_orderkey"); runtime datasets qualify them with the
/// query alias ("l.l_orderkey") to keep join provenance unambiguous.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// Index of the column with the given name, or -1 when absent.
  int FieldIndex(const std::string& name) const;

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  bool HasField(const std::string& name) const {
    return FieldIndex(name) >= 0;
  }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace dynopt

#endif  // DYNOPT_STORAGE_SCHEMA_H_
