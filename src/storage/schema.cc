#include "storage/schema.h"

#include <sstream>

namespace dynopt {

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << " " << ValueTypeName(fields_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace dynopt
