#ifndef DYNOPT_STORAGE_CATALOG_H_
#define DYNOPT_STORAGE_CATALOG_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace dynopt {

/// Resolver for virtual system tables ("sys.*"): the catalog consults it
/// when a lookup misses and the name is a system name, so `SELECT * FROM
/// sys.queries` scans an ordinary `Table` materialized on demand from live
/// engine state. Implementations must be thread-safe — binder and executor
/// may materialize concurrently with running queries — and must return a
/// *fresh snapshot* table per call (the caller may hold it across the
/// provider's state changing underneath).
class SystemTableProvider {
 public:
  virtual ~SystemTableProvider() = default;
  /// True when this provider can materialize `name`.
  virtual bool Handles(const std::string& name) const = 0;
  /// Builds a snapshot Table for `name` (NotFound when unhandled).
  virtual Result<std::shared_ptr<Table>> Materialize(
      const std::string& name) const = 0;
  /// Every name this provider handles (for TableNames / \tables).
  virtual std::vector<std::string> Names() const = 0;
};

/// Name -> table registry for base datasets and the temporary datasets the
/// dynamic optimizer materializes at each re-optimization point. Temp
/// tables get unique generated names ("__tmp_<prefix>_<n>") so concurrent
/// queries never collide, and are dropped when a query finishes.
class Catalog {
 public:
  Catalog() = default;

  Status RegisterTable(std::shared_ptr<Table> table);
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  /// Installs (or clears, with nullptr) the virtual-table resolver; the
  /// provider must outlive the catalog or the next SetSystemTableProvider
  /// call. GetTable/HasTable consult it for "sys."-prefixed names that are
  /// not registered; TableNames() appends its names.
  void SetSystemTableProvider(std::shared_ptr<const SystemTableProvider> p);

  /// True for virtual-system-table names ("sys."-prefixed). Scans of these
  /// are metered at zero simulated cost (they read engine introspection
  /// state, not simulated cluster data).
  static bool IsSystemName(const std::string& name) {
    return name.rfind("sys.", 0) == 0;
  }

  /// Generates a fresh name for an intermediate-result table.
  std::string UniqueTempName(const std::string& prefix);

  /// True for names produced by UniqueTempName.
  static bool IsTempName(const std::string& name);

  /// Drops every temp table whose UniqueTempName prefix matches `prefix`
  /// (all temp tables when `prefix` is empty) and returns the dropped
  /// names, so callers can also clear the tables' statistics. This is the
  /// failure-path janitor: a query that dies mid-run cannot enumerate the
  /// temp tables it had created, but it knows the prefixes it uses.
  std::vector<std::string> DropTempTablesWithPrefix(
      const std::string& prefix);

  std::vector<std::string> TableNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Table>> tables_;
  std::shared_ptr<const SystemTableProvider> sys_provider_;
  std::atomic<uint64_t> temp_counter_{0};
};

}  // namespace dynopt

#endif  // DYNOPT_STORAGE_CATALOG_H_
