#ifndef DYNOPT_STORAGE_CATALOG_H_
#define DYNOPT_STORAGE_CATALOG_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace dynopt {

/// Name -> table registry for base datasets and the temporary datasets the
/// dynamic optimizer materializes at each re-optimization point. Temp
/// tables get unique generated names ("__tmp_<prefix>_<n>") so concurrent
/// queries never collide, and are dropped when a query finishes.
class Catalog {
 public:
  Catalog() = default;

  Status RegisterTable(std::shared_ptr<Table> table);
  Result<std::shared_ptr<Table>> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  /// Generates a fresh name for an intermediate-result table.
  std::string UniqueTempName(const std::string& prefix);

  /// True for names produced by UniqueTempName.
  static bool IsTempName(const std::string& name);

  /// Drops every temp table whose UniqueTempName prefix matches `prefix`
  /// (all temp tables when `prefix` is empty) and returns the dropped
  /// names, so callers can also clear the tables' statistics. This is the
  /// failure-path janitor: a query that dies mid-run cannot enumerate the
  /// temp tables it had created, but it knows the prefixes it uses.
  std::vector<std::string> DropTempTablesWithPrefix(
      const std::string& prefix);

  std::vector<std::string> TableNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<Table>> tables_;
  std::atomic<uint64_t> temp_counter_{0};
};

}  // namespace dynopt

#endif  // DYNOPT_STORAGE_CATALOG_H_
