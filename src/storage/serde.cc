#include "storage/serde.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/hash.h"

namespace dynopt {

namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBoolFalse = 1;
constexpr uint8_t kTagBoolTrue = 2;
constexpr uint8_t kTagInt64 = 3;
constexpr uint8_t kTagDouble = 4;
constexpr uint8_t kTagString = 5;

void AppendFixed64(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, 8);
}

Result<uint64_t> ReadFixed64(const std::string& buffer, size_t* offset) {
  if (*offset + 8 > buffer.size()) {
    return Status::DataCorruption("serde: truncated fixed64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(
             static_cast<unsigned char>(buffer[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  return v;
}

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> ReadVarint(const std::string& buffer, size_t* offset) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (*offset >= buffer.size()) {
      return Status::DataCorruption("serde: truncated varint");
    }
    uint8_t byte = static_cast<unsigned char>(buffer[(*offset)++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) return Status::DataCorruption("serde: varint overflow");
  }
  return v;
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->push_back(static_cast<char>(kTagNull));
      break;
    case ValueType::kBool:
      out->push_back(
          static_cast<char>(v.AsBool() ? kTagBoolTrue : kTagBoolFalse));
      break;
    case ValueType::kInt64:
      out->push_back(static_cast<char>(kTagInt64));
      AppendFixed64(static_cast<uint64_t>(v.AsInt64()), out);
      break;
    case ValueType::kDouble: {
      out->push_back(static_cast<char>(kTagDouble));
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(d));
      AppendFixed64(bits, out);
      break;
    }
    case ValueType::kString: {
      out->push_back(static_cast<char>(kTagString));
      const std::string& s = v.AsString();
      AppendVarint(s.size(), out);
      out->append(s);
      break;
    }
  }
}

Result<Value> DecodeValue(const std::string& buffer, size_t* offset) {
  if (*offset >= buffer.size()) {
    return Status::DataCorruption("serde: truncated value tag");
  }
  uint8_t tag = static_cast<unsigned char>(buffer[(*offset)++]);
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBoolFalse:
      return Value(false);
    case kTagBoolTrue:
      return Value(true);
    case kTagInt64: {
      DYNOPT_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64(buffer, offset));
      return Value(static_cast<int64_t>(bits));
    }
    case kTagDouble: {
      DYNOPT_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64(buffer, offset));
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kTagString: {
      DYNOPT_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(buffer, offset));
      // len is attacker-/corruption-controlled: compare against the space
      // left instead of `*offset + len` (which can wrap).
      if (len > buffer.size() - *offset) {
        return Status::DataCorruption("serde: truncated string payload");
      }
      Value v(buffer.substr(*offset, len));
      *offset += len;
      return v;
    }
    default:
      return Status::DataCorruption("serde: unknown value tag " +
                                    std::to_string(tag));
  }
}

void EncodeRow(const Row& row, std::string* out) {
  AppendVarint(row.size(), out);
  for (const Value& v : row) EncodeValue(v, out);
}

Result<Row> DecodeRow(const std::string& buffer, size_t* offset) {
  DYNOPT_ASSIGN_OR_RETURN(uint64_t count, ReadVarint(buffer, offset));
  Row row;
  row.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DYNOPT_ASSIGN_OR_RETURN(Value v, DecodeValue(buffer, offset));
    row.push_back(std::move(v));
  }
  return row;
}

std::string EncodeRows(const std::vector<Row>& rows) {
  std::string out;
  AppendVarint(rows.size(), &out);
  for (const Row& row : rows) EncodeRow(row, &out);
  return out;
}

Result<std::vector<Row>> DecodeRows(const std::string& buffer) {
  size_t offset = 0;
  DYNOPT_ASSIGN_OR_RETURN(uint64_t count, ReadVarint(buffer, &offset));
  std::vector<Row> rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DYNOPT_ASSIGN_OR_RETURN(Row row, DecodeRow(buffer, &offset));
    rows.push_back(std::move(row));
  }
  if (offset != buffer.size()) {
    return Status::DataCorruption("serde: trailing bytes after rows");
  }
  return rows;
}

namespace {

/// "DRB2": Dynopt Row Blocks, format version 2 (v1 was the bare
/// EncodeRows stream with no integrity protection).
constexpr char kRowsFileMagic[4] = {'D', 'R', 'B', '2'};
constexpr size_t kRowsPerBlock = 1024;

}  // namespace

std::string EncodeRowsChecksummed(const std::vector<Row>& rows) {
  std::string out;
  out.append(kRowsFileMagic, sizeof(kRowsFileMagic));
  AppendVarint(rows.size(), &out);
  std::string payload;
  for (size_t begin = 0; begin < rows.size(); begin += kRowsPerBlock) {
    const size_t end = std::min(rows.size(), begin + kRowsPerBlock);
    payload.clear();
    for (size_t i = begin; i < end; ++i) EncodeRow(rows[i], &payload);
    AppendVarint(end - begin, &out);
    AppendVarint(payload.size(), &out);
    AppendFixed64(HashBytes(payload.data(), payload.size()), &out);
    out.append(payload);
  }
  return out;
}

Result<std::vector<Row>> DecodeRowsChecksummed(const std::string& buffer) {
  if (buffer.size() < sizeof(kRowsFileMagic) ||
      std::memcmp(buffer.data(), kRowsFileMagic, sizeof(kRowsFileMagic)) !=
          0) {
    return Status::DataCorruption("serde: bad row-block magic");
  }
  size_t offset = sizeof(kRowsFileMagic);
  DYNOPT_ASSIGN_OR_RETURN(uint64_t total, ReadVarint(buffer, &offset));
  std::vector<Row> rows;
  // A corrupted count must not drive a huge allocation; blocks below bound
  // the real row count anyway.
  rows.reserve(std::min<uint64_t>(total, buffer.size()));
  uint64_t decoded = 0;
  while (decoded < total) {
    DYNOPT_ASSIGN_OR_RETURN(uint64_t block_rows, ReadVarint(buffer, &offset));
    DYNOPT_ASSIGN_OR_RETURN(uint64_t payload_size,
                            ReadVarint(buffer, &offset));
    DYNOPT_ASSIGN_OR_RETURN(uint64_t checksum, ReadFixed64(buffer, &offset));
    if (block_rows == 0 || decoded + block_rows > total) {
      return Status::DataCorruption("serde: row-block count out of range");
    }
    if (payload_size > buffer.size() - offset) {
      return Status::DataCorruption("serde: truncated row-block payload");
    }
    if (HashBytes(buffer.data() + offset, payload_size) != checksum) {
      return Status::DataCorruption("serde: row-block checksum mismatch");
    }
    const size_t block_end = offset + payload_size;
    for (uint64_t i = 0; i < block_rows; ++i) {
      DYNOPT_ASSIGN_OR_RETURN(Row row, DecodeRow(buffer, &offset));
      if (offset > block_end) {
        return Status::DataCorruption("serde: row crosses block boundary");
      }
      rows.push_back(std::move(row));
    }
    if (offset != block_end) {
      return Status::DataCorruption("serde: row-block payload size mismatch");
    }
    decoded += block_rows;
  }
  if (offset != buffer.size()) {
    return Status::DataCorruption("serde: trailing bytes after row blocks");
  }
  return rows;
}

Status WriteRowsFile(const std::string& path, const std::vector<Row>& rows) {
  std::string buffer = EncodeRowsChecksummed(rows);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(buffer.data(), 1, buffer.size(), f);
  int close_rc = std::fclose(f);
  if (written != buffer.size() || close_rc != 0) {
    return Status::ExecutionError("short write to " + path);
  }
  return Status::OK();
}

Result<std::vector<Row>> ReadRowsFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + " for reading");
  }
  std::string buffer;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buffer.append(chunk, n);
  }
  std::fclose(f);
  return DecodeRowsChecksummed(buffer);
}

int RemoveFilesWithPrefix(const std::string& dir, const std::string& prefix) {
  namespace fs = std::filesystem;
  int removed = 0;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    if (fs::remove(entry.path(), ec) && !ec) ++removed;
  }
  return removed;
}

int CountFilesWithPrefix(const std::string& dir, const std::string& prefix) {
  namespace fs = std::filesystem;
  int count = 0;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0) ++count;
  }
  return count;
}

Status CorruptByteInFile(const std::string& path, uint64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + " for corruption");
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size <= 0) {
    std::fclose(f);
    return Status::InvalidArgument(path + " is empty; nothing to corrupt");
  }
  const long pos = static_cast<long>(offset % static_cast<uint64_t>(size));
  std::fseek(f, pos, SEEK_SET);
  int byte = std::fgetc(f);
  std::fseek(f, pos, SEEK_SET);
  std::fputc((byte ^ 0x40) & 0xff, f);
  std::fclose(f);
  return Status::OK();
}

}  // namespace dynopt
