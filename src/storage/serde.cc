#include "storage/serde.h"

#include <cstdio>
#include <cstring>

namespace dynopt {

namespace {

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBoolFalse = 1;
constexpr uint8_t kTagBoolTrue = 2;
constexpr uint8_t kTagInt64 = 3;
constexpr uint8_t kTagDouble = 4;
constexpr uint8_t kTagString = 5;

void AppendFixed64(uint64_t v, std::string* out) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out->append(buf, 8);
}

Result<uint64_t> ReadFixed64(const std::string& buffer, size_t* offset) {
  if (*offset + 8 > buffer.size()) {
    return Status::OutOfRange("serde: truncated fixed64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(
             static_cast<unsigned char>(buffer[*offset + i]))
         << (8 * i);
  }
  *offset += 8;
  return v;
}

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

Result<uint64_t> ReadVarint(const std::string& buffer, size_t* offset) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (*offset >= buffer.size()) {
      return Status::OutOfRange("serde: truncated varint");
    }
    uint8_t byte = static_cast<unsigned char>(buffer[(*offset)++]);
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) return Status::OutOfRange("serde: varint overflow");
  }
  return v;
}

}  // namespace

void EncodeValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->push_back(static_cast<char>(kTagNull));
      break;
    case ValueType::kBool:
      out->push_back(
          static_cast<char>(v.AsBool() ? kTagBoolTrue : kTagBoolFalse));
      break;
    case ValueType::kInt64:
      out->push_back(static_cast<char>(kTagInt64));
      AppendFixed64(static_cast<uint64_t>(v.AsInt64()), out);
      break;
    case ValueType::kDouble: {
      out->push_back(static_cast<char>(kTagDouble));
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(d));
      AppendFixed64(bits, out);
      break;
    }
    case ValueType::kString: {
      out->push_back(static_cast<char>(kTagString));
      const std::string& s = v.AsString();
      AppendVarint(s.size(), out);
      out->append(s);
      break;
    }
  }
}

Result<Value> DecodeValue(const std::string& buffer, size_t* offset) {
  if (*offset >= buffer.size()) {
    return Status::OutOfRange("serde: truncated value tag");
  }
  uint8_t tag = static_cast<unsigned char>(buffer[(*offset)++]);
  switch (tag) {
    case kTagNull:
      return Value::Null();
    case kTagBoolFalse:
      return Value(false);
    case kTagBoolTrue:
      return Value(true);
    case kTagInt64: {
      DYNOPT_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64(buffer, offset));
      return Value(static_cast<int64_t>(bits));
    }
    case kTagDouble: {
      DYNOPT_ASSIGN_OR_RETURN(uint64_t bits, ReadFixed64(buffer, offset));
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value(d);
    }
    case kTagString: {
      DYNOPT_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(buffer, offset));
      if (*offset + len > buffer.size()) {
        return Status::OutOfRange("serde: truncated string payload");
      }
      Value v(buffer.substr(*offset, len));
      *offset += len;
      return v;
    }
    default:
      return Status::OutOfRange("serde: unknown value tag " +
                                std::to_string(tag));
  }
}

void EncodeRow(const Row& row, std::string* out) {
  AppendVarint(row.size(), out);
  for (const Value& v : row) EncodeValue(v, out);
}

Result<Row> DecodeRow(const std::string& buffer, size_t* offset) {
  DYNOPT_ASSIGN_OR_RETURN(uint64_t count, ReadVarint(buffer, offset));
  Row row;
  row.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DYNOPT_ASSIGN_OR_RETURN(Value v, DecodeValue(buffer, offset));
    row.push_back(std::move(v));
  }
  return row;
}

std::string EncodeRows(const std::vector<Row>& rows) {
  std::string out;
  AppendVarint(rows.size(), &out);
  for (const Row& row : rows) EncodeRow(row, &out);
  return out;
}

Result<std::vector<Row>> DecodeRows(const std::string& buffer) {
  size_t offset = 0;
  DYNOPT_ASSIGN_OR_RETURN(uint64_t count, ReadVarint(buffer, &offset));
  std::vector<Row> rows;
  rows.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DYNOPT_ASSIGN_OR_RETURN(Row row, DecodeRow(buffer, &offset));
    rows.push_back(std::move(row));
  }
  if (offset != buffer.size()) {
    return Status::OutOfRange("serde: trailing bytes after rows");
  }
  return rows;
}

Status WriteRowsFile(const std::string& path, const std::vector<Row>& rows) {
  std::string buffer = EncodeRows(rows);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(buffer.data(), 1, buffer.size(), f);
  int close_rc = std::fclose(f);
  if (written != buffer.size() || close_rc != 0) {
    return Status::ExecutionError("short write to " + path);
  }
  return Status::OK();
}

Result<std::vector<Row>> ReadRowsFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + " for reading");
  }
  std::string buffer;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buffer.append(chunk, n);
  }
  std::fclose(f);
  return DecodeRows(buffer);
}

}  // namespace dynopt
