#ifndef DYNOPT_STORAGE_CSV_H_
#define DYNOPT_STORAGE_CSV_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace dynopt {

/// CSV ingestion options.
struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line (column headers).
  bool has_header = true;
  /// Literal cell text treated as NULL (in addition to empty cells for
  /// non-string columns).
  std::string null_token = "\\N";
  /// Hash-partition on these columns (must exist in the schema); empty =
  /// round-robin.
  std::vector<std::string> partition_key;
};

/// Parses one CSV line into cells (no quoting dialect beyond double-quoted
/// fields with "" escapes).
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter);

/// Converts a cell to a Value of `type`; empty non-string cells and the
/// null token map to NULL. Fails on malformed numerics.
Result<Value> ParseCsvCell(const std::string& cell, ValueType type,
                           const CsvOptions& options);

/// Loads `path` into a new table named `name` with the given schema,
/// hash-partitioned across `num_partitions`. The caller registers the
/// result with a Catalog. Cell count must match the schema on every line.
Result<std::shared_ptr<Table>> LoadCsvTable(const std::string& name,
                                            const Schema& schema,
                                            const std::string& path,
                                            size_t num_partitions,
                                            const CsvOptions& options =
                                                CsvOptions());

}  // namespace dynopt

#endif  // DYNOPT_STORAGE_CSV_H_
