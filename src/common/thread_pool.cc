#include "common/thread_pool.h"

#include <atomic>
#include <memory>

namespace dynopt {

namespace {

/// Shared state of one ParallelFor call. Held by shared_ptr because a
/// helper task can still sit in the queue after the call returned (when the
/// caller claimed every block itself); such a task must find only a
/// harmless "no blocks left" state, never a dangling stack frame.
struct ForState {
  size_t n = 0;
  size_t num_blocks = 0;
  /// Valid only while the owning ParallelFor call is still blocked; tasks
  /// dereference it only after successfully claiming a block, which is
  /// impossible once the call returned.
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next_block{0};
  std::atomic<size_t> done_blocks{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
};

/// Claims and runs blocks until none remain.
void RunBlocks(ForState* s) {
  for (;;) {
    size_t b = s->next_block.fetch_add(1, std::memory_order_relaxed);
    if (b >= s->num_blocks) return;
    const size_t begin = b * s->n / s->num_blocks;
    const size_t end = (b + 1) * s->n / s->num_blocks;
    for (size_t i = begin; i < end; ++i) (*s->fn)(i);
    if (s->done_blocks.fetch_add(1) + 1 == s->num_blocks) {
      std::lock_guard<std::mutex> lock(s->done_mu);
      s->done_cv.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Tiny loops run inline: no queue, no lock, no wake.
  if (n == 1 || threads_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ForState>();
  state->n = n;
  // The caller participates, so one block is its own; helpers get the rest.
  state->num_blocks = std::min(n, threads_.size() + 1);
  state->fn = &fn;
  const size_t helpers = state->num_blocks - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) {
      tasks_.push([state] { RunBlocks(state.get()); });
    }
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
  RunBlocks(state.get());
  std::unique_lock<std::mutex> lock(state->done_mu);
  state->done_cv.wait(lock, [&] {
    return state->done_blocks.load() == state->num_blocks;
  });
}

}  // namespace dynopt
