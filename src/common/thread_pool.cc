#include "common/thread_pool.h"

#include <atomic>

namespace dynopt {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::atomic<size_t> remaining{n};
  std::mutex done_mu;
  std::condition_variable done_cv;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      tasks_.push([&, i] {
        fn(i);
        if (remaining.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> done_lock(done_mu);
          done_cv.notify_one();
        }
      });
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> done_lock(done_mu);
  done_cv.wait(done_lock, [&] { return remaining.load() == 0; });
}

}  // namespace dynopt
