#include "common/random.h"

#include <cmath>

#include "common/hash.h"

namespace dynopt {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed all four lanes from SplitMix64 per the xoshiro authors' advice.
  uint64_t x = seed;
  for (auto& lane : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    lane = Mix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  // Rejection-free multiply-shift; bias is negligible for our n.
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Next()) * n) >> 64);
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  // Binary search for the first cdf entry >= u.
  size_t lo = 0, hi = cdf_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < cdf_.size() ? lo : cdf_.size() - 1;
}

}  // namespace dynopt
