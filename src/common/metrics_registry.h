#ifndef DYNOPT_COMMON_METRICS_REGISTRY_H_
#define DYNOPT_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dynopt {

/// Monotonic engine-wide counter (e.g. "exec.spill_bytes").
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (e.g. "admission.queue_depth").
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Power-of-two bucketed histogram of non-negative integer samples (e.g.
/// queue-wait microseconds). Bucket i holds samples in [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(uint64_t value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Upper bucket bound below which >= `quantile` of samples fall (0 when
  /// empty). Approximate by construction — bucket granularity is 2x.
  uint64_t ApproxQuantile(double quantile) const;
  uint64_t p50() const { return ApproxQuantile(0.5); }
  uint64_t p90() const { return ApproxQuantile(0.9); }
  uint64_t p99() const { return ApproxQuantile(0.99); }
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// One metric rendered to plain values — the row format `sys.metrics`
/// materializes and benches serialize. `value` is the counter/gauge value
/// or the histogram sample count; sum/p50/p90/p99 are histogram-only.
struct MetricSample {
  std::string kind;  ///< "counter" | "gauge" | "histogram".
  std::string name;
  int64_t value = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

/// Registry of named counters/gauges/histograms. Each Engine owns one so
/// metrics stay attributable per engine; Global() is the process-wide
/// default instance for engine-less contexts. Lookup takes a lock; the
/// returned pointers are stable for the registry lifetime, so hot call
/// sites can cache them. TextSnapshot() renders one sorted "name value"
/// line per metric — the endpoint the bench harness writes next to its
/// JSON records.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  std::string TextSnapshot() const;

  /// Every registered metric as plain values, counters then gauges then
  /// histograms, each group sorted by name (the map order).
  std::vector<MetricSample> Samples() const;

  /// Zeroes every registered metric (benches/tests isolate runs with this;
  /// the names stay registered).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dynopt

#endif  // DYNOPT_COMMON_METRICS_REGISTRY_H_
