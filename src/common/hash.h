#ifndef DYNOPT_COMMON_HASH_H_
#define DYNOPT_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dynopt {

/// SplitMix64 finalizer: cheap, well-distributed 64-bit mixing. Used for
/// value hashing, hash-partitioning, and as the hash function feeding the
/// HyperLogLog sketch.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two hashes (boost-style but 64-bit).
inline uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a over arbitrary bytes, finalized through Mix64.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

}  // namespace dynopt

#endif  // DYNOPT_COMMON_HASH_H_
