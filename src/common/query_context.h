#ifndef DYNOPT_COMMON_QUERY_CONTEXT_H_
#define DYNOPT_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace dynopt {

/// Cooperative cancellation flag shared between a query's driver thread and
/// whoever wants the query gone (a client disconnect, a deadline watchdog,
/// an operator). Checking is a relaxed atomic load, so kernels can afford
/// to test it at every partition-task boundary; the reason string is only
/// touched on the (cold) cancel path.
class CancellationToken {
 public:
  void Cancel(std::string reason = "cancelled") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (reason_.empty()) reason_ = std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  std::string reason() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;
};

/// Priority class a query carries through admission. The weighted-fair
/// scheduler grants slots across classes by weight; the load shedder drops
/// from the lowest non-empty class first. Default kNormal: a workload that
/// never sets priorities collapses to a single class, which the scheduler
/// serves in exact FIFO arrival order (the pre-priority behavior).
enum class QueryPriority : int {
  kLow = 0,
  kNormal = 1,
  kHigh = 2,
};

inline constexpr int kNumQueryPriorities = 3;

inline const char* QueryPriorityName(QueryPriority p) {
  switch (p) {
    case QueryPriority::kLow:
      return "low";
    case QueryPriority::kNormal:
      return "normal";
    case QueryPriority::kHigh:
      return "high";
  }
  return "?";
}

/// Per-query execution context threaded from the submitting caller through
/// the optimizer driver loops into every executor kernel: a process-unique
/// id (names this query's spill files), a cooperative CancellationToken, an
/// optional wall-clock deadline, and the query-level MemoryTracker (child
/// of the engine tracker when admitted through the AdmissionController).
///
/// Everything is optional-by-default: an executor with no context behaves
/// exactly like the pre-governance engine.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  explicit QueryContext(std::string label = "")
      : id_(next_id_.fetch_add(1, std::memory_order_relaxed)),
        label_(std::move(label)) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }

  CancellationToken& cancellation() { return token_; }
  const CancellationToken& cancellation() const { return token_; }
  void Cancel(std::string reason = "cancelled") {
    token_.Cancel(std::move(reason));
  }
  bool cancelled() const { return token_.cancelled(); }

  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// Deadline `seconds` of wall-clock from now (<= 0 expires immediately).
  void set_timeout(double seconds) {
    set_deadline(Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(seconds)));
  }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  bool deadline_expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// The cooperative check every task boundary runs: kCancelled when the
  /// token fired or the deadline passed, OK otherwise. An expired deadline
  /// latches the token so later checks are a single atomic load and the
  /// reason survives. Each check also records a liveness heartbeat: the
  /// partition-task and re-optimization checkpoints that already call this
  /// are exactly the points where a healthy query proves progress, so the
  /// watchdog's staleness monitor costs the hot path nothing extra.
  Status CheckAlive() {
    Heartbeat();
    if (token_.cancelled()) {
      return Status::Cancelled("query " + std::to_string(id_) +
                               " cancelled: " + token_.reason());
    }
    if (deadline_expired()) {
      token_.Cancel("deadline exceeded");
      return Status::Cancelled("query " + std::to_string(id_) +
                               " cancelled: deadline exceeded");
    }
    return Status::OK();
  }

  /// Query-level memory tracker. Ungoverned (no parent, no budget) until
  /// AttachMemory re-homes it under the engine tracker at admission.
  MemoryTracker& memory() { return *memory_; }

  /// Re-parents the query tracker under `parent` with `budget_bytes`
  /// (0 == unlimited). Call before the query starts executing (the old
  /// tracker must hold no reservations).
  void AttachMemory(MemoryTracker* parent, uint64_t budget_bytes) {
    memory_ = std::make_unique<MemoryTracker>(
        budget_bytes, parent, "query-" + std::to_string(id_));
  }

  /// Prefix of every spill file this query writes under spill_directory;
  /// recovery sweeps it after terminal failures.
  std::string SpillFilePrefix() const {
    return "__spill_q" + std::to_string(id_) + "_";
  }

  /// Records that this query made observable progress just now. Called by
  /// CheckAlive() (partition-task boundaries, reopt points) and readable by
  /// the QueryWatchdog's staleness monitor from its own thread.
  void Heartbeat() {
    last_heartbeat_ns_.store(NowNs(), std::memory_order_relaxed);
  }

  /// Wall-clock seconds since the last heartbeat (since construction when
  /// the query never checked in). Monitor-thread safe.
  double SecondsSinceHeartbeat() const {
    return static_cast<double>(NowNs() -
                               last_heartbeat_ns_.load(
                                   std::memory_order_relaxed)) *
           1e-9;
  }

  /// Wall-clock seconds this query waited in the admission queue (set by
  /// AdmissionController::Admit; surfaces in ExecMetrics).
  double queue_wait_seconds = 0;

  /// Priority class consulted by the admission scheduler and the load
  /// shedder. Set before Admit(); defaults to kNormal (single-class FIFO).
  QueryPriority priority = QueryPriority::kNormal;

  /// Optimizer-estimated working-set bytes for this query (e.g. from
  /// EstimateQueryReservationBytes, opt/degrade.h). When non-zero the
  /// admission controller sizes this query's memory reservation from it
  /// instead of the one-size-fits-all query_reservation_bytes.
  uint64_t estimated_memory_bytes = 0;

  /// Degradation stamps, set by the admission controller when the query was
  /// admitted under pressure instead of being rejected: memory_degraded
  /// means the reservation/budget was shrunk (the query will spill more),
  /// strategy_downgraded means the caller should run a cheap static plan
  /// instead of a dynamic re-optimizing one (see ApplyStrategyDowngrade,
  /// opt/degrade.h). Written before Admit() returns, on the waiter's own
  /// synchronization; read by the query's driver thread afterwards.
  bool memory_degraded = false;
  bool strategy_downgraded = false;

 private:
  static uint64_t NowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

  static inline std::atomic<uint64_t> next_id_{1};

  uint64_t id_;
  std::string label_;
  CancellationToken token_;
  std::atomic<uint64_t> last_heartbeat_ns_{NowNs()};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::unique_ptr<MemoryTracker> memory_ =
      std::make_unique<MemoryTracker>(0, nullptr, "query");
};

}  // namespace dynopt

#endif  // DYNOPT_COMMON_QUERY_CONTEXT_H_
