#ifndef DYNOPT_COMMON_QUERY_CONTEXT_H_
#define DYNOPT_COMMON_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/memory_tracker.h"
#include "common/status.h"

namespace dynopt {

/// Cooperative cancellation flag shared between a query's driver thread and
/// whoever wants the query gone (a client disconnect, a deadline watchdog,
/// an operator). Checking is a relaxed atomic load, so kernels can afford
/// to test it at every partition-task boundary; the reason string is only
/// touched on the (cold) cancel path.
class CancellationToken {
 public:
  void Cancel(std::string reason = "cancelled") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (reason_.empty()) reason_ = std::move(reason);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  std::string reason() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reason_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  std::string reason_;
};

/// Per-query execution context threaded from the submitting caller through
/// the optimizer driver loops into every executor kernel: a process-unique
/// id (names this query's spill files), a cooperative CancellationToken, an
/// optional wall-clock deadline, and the query-level MemoryTracker (child
/// of the engine tracker when admitted through the AdmissionController).
///
/// Everything is optional-by-default: an executor with no context behaves
/// exactly like the pre-governance engine.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  explicit QueryContext(std::string label = "")
      : id_(next_id_.fetch_add(1, std::memory_order_relaxed)),
        label_(std::move(label)) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }

  CancellationToken& cancellation() { return token_; }
  const CancellationToken& cancellation() const { return token_; }
  void Cancel(std::string reason = "cancelled") {
    token_.Cancel(std::move(reason));
  }
  bool cancelled() const { return token_.cancelled(); }

  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// Deadline `seconds` of wall-clock from now (<= 0 expires immediately).
  void set_timeout(double seconds) {
    set_deadline(Clock::now() +
                 std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(seconds)));
  }
  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  bool deadline_expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// The cooperative check every task boundary runs: kCancelled when the
  /// token fired or the deadline passed, OK otherwise. An expired deadline
  /// latches the token so later checks are a single atomic load and the
  /// reason survives.
  Status CheckAlive() {
    if (token_.cancelled()) {
      return Status::Cancelled("query " + std::to_string(id_) +
                               " cancelled: " + token_.reason());
    }
    if (deadline_expired()) {
      token_.Cancel("deadline exceeded");
      return Status::Cancelled("query " + std::to_string(id_) +
                               " cancelled: deadline exceeded");
    }
    return Status::OK();
  }

  /// Query-level memory tracker. Ungoverned (no parent, no budget) until
  /// AttachMemory re-homes it under the engine tracker at admission.
  MemoryTracker& memory() { return *memory_; }

  /// Re-parents the query tracker under `parent` with `budget_bytes`
  /// (0 == unlimited). Call before the query starts executing (the old
  /// tracker must hold no reservations).
  void AttachMemory(MemoryTracker* parent, uint64_t budget_bytes) {
    memory_ = std::make_unique<MemoryTracker>(
        budget_bytes, parent, "query-" + std::to_string(id_));
  }

  /// Prefix of every spill file this query writes under spill_directory;
  /// recovery sweeps it after terminal failures.
  std::string SpillFilePrefix() const {
    return "__spill_q" + std::to_string(id_) + "_";
  }

  /// Wall-clock seconds this query waited in the admission queue (set by
  /// AdmissionController::Admit; surfaces in ExecMetrics).
  double queue_wait_seconds = 0;

 private:
  static inline std::atomic<uint64_t> next_id_{1};

  uint64_t id_;
  std::string label_;
  CancellationToken token_;
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  std::unique_ptr<MemoryTracker> memory_ =
      std::make_unique<MemoryTracker>(0, nullptr, "query");
};

}  // namespace dynopt

#endif  // DYNOPT_COMMON_QUERY_CONTEXT_H_
