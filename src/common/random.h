#ifndef DYNOPT_COMMON_RANDOM_H_
#define DYNOPT_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dynopt {

/// Deterministic xoshiro256** PRNG. Workload generation and sampling must be
/// reproducible across runs, so all randomness in the library flows through
/// explicitly seeded instances of this class (never std::rand or
/// nondeterministic seeds).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli(p).
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

/// Zipf(s) sampler over {0, ..., n-1} using precomputed CDF + binary search.
/// Used by the workload generators to create the skewed fact-to-fact join
/// fan-outs that break the optimizer's uniformity assumptions (the condition
/// the paper's dynamic approach exploits).
class ZipfDistribution {
 public:
  /// `n` distinct items, exponent `s` (s=0 degenerates to uniform).
  ZipfDistribution(size_t n, double s);

  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dynopt

#endif  // DYNOPT_COMMON_RANDOM_H_
