#ifndef DYNOPT_COMMON_RETRY_BUDGET_H_
#define DYNOPT_COMMON_RETRY_BUDGET_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>

namespace dynopt {

/// Knobs of the engine-wide retry budget. Disabled by default
/// (max_tokens == 0 means unlimited): every retry the per-task
/// BackoffPolicy allows is granted, exactly the pre-budget behavior.
struct RetryBudgetConfig {
  /// Capacity of the token bucket (and its initial fill). Each granted
  /// retry consumes one token; a retry requested from an empty bucket is
  /// denied and the requesting query fails fast with kResourceExhausted
  /// instead of re-executing. 0 == unlimited (budget disabled).
  double max_tokens = 0;
  /// Tokens restored per wall-clock second (capped at max_tokens). Zero
  /// makes the budget a fixed allowance over the engine's lifetime.
  double refill_per_second = 0;
};

/// Engine-wide token bucket over partition-task retries. Per-task backoff
/// (BackoffPolicy) bounds how often ONE task retries; this bounds how much
/// retry work the WHOLE engine performs at once. Under cluster-wide fault
/// injection the two compose: individual tasks still back off, but once
/// the global bucket runs dry further retries are denied and their queries
/// fail fast — load shedding for the retry path, so a fault storm cannot
/// multiply into a retry storm that outlives the fault.
///
/// Thread-safe: retries are requested from ParallelFor bodies of
/// concurrently admitted queries. Refill uses the wall clock (retries cost
/// real slot time regardless of the simulated cost model).
class RetryBudget {
 public:
  using Clock = std::chrono::steady_clock;

  explicit RetryBudget(const RetryBudgetConfig& config)
      : config_(config), tokens_(config.max_tokens), last_refill_(Clock::now()) {}

  RetryBudget(const RetryBudget&) = delete;
  RetryBudget& operator=(const RetryBudget&) = delete;

  /// False when the budget is enabled and empty — the caller must fail
  /// fast instead of retrying. Always true when disabled.
  bool TryAcquire(double tokens = 1.0) {
    if (!enabled()) return true;
    std::lock_guard<std::mutex> lock(mu_);
    RefillLocked();
    if (tokens_ + 1e-9 < tokens) {
      ++denied_;
      return false;
    }
    tokens_ -= tokens;
    ++granted_;
    return true;
  }

  bool enabled() const { return config_.max_tokens > 0; }
  const RetryBudgetConfig& config() const { return config_; }

  double tokens() {
    std::lock_guard<std::mutex> lock(mu_);
    RefillLocked();
    return tokens_;
  }
  uint64_t granted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return granted_;
  }
  uint64_t denied() const {
    std::lock_guard<std::mutex> lock(mu_);
    return denied_;
  }

 private:
  void RefillLocked() {
    if (config_.refill_per_second <= 0) return;
    const Clock::time_point now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_refill_).count();
    last_refill_ = now;
    tokens_ = std::min(config_.max_tokens,
                       tokens_ + elapsed * config_.refill_per_second);
  }

  const RetryBudgetConfig config_;
  mutable std::mutex mu_;
  double tokens_;
  Clock::time_point last_refill_;
  uint64_t granted_ = 0;
  uint64_t denied_ = 0;
};

}  // namespace dynopt

#endif  // DYNOPT_COMMON_RETRY_BUDGET_H_
