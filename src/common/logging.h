#ifndef DYNOPT_COMMON_LOGGING_H_
#define DYNOPT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dynopt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kWarn so library users are not spammed; benches/examples raise it. Both
/// accessors are thread-safe (a single atomic underneath). The environment
/// variable DYNOPT_LOG_LEVEL ("debug"/"info"/"warn"/"error" or 0-3), read
/// once at first use, overrides the default so benches/CI can raise
/// verbosity without code edits; SetLogLevel still wins after that.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive) or "0"-"3".
/// Returns false and leaves `out` untouched on anything else.
bool ParseLogLevel(const char* name, LogLevel* out);

namespace internal {

/// Stream-style log line, emitted on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dynopt

#define DYNOPT_LOG(level)                                                  \
  if (::dynopt::LogLevel::level < ::dynopt::GetLogLevel()) {               \
  } else                                                                   \
    ::dynopt::internal::LogMessage(::dynopt::LogLevel::level, __FILE__,    \
                                   __LINE__)                               \
        .stream()

/// Fatal invariant check; aborts with a message. Used for programmer errors
/// only (user-facing failures return Status).
#define DYNOPT_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,         \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // DYNOPT_COMMON_LOGGING_H_
