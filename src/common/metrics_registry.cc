#include "common/metrics_registry.h"

#include <sstream>

namespace dynopt {

namespace {

int BucketFor(uint64_t value) {
  int bucket = 0;
  while (value > 0) {
    ++bucket;
    value >>= 1;
  }
  return bucket < Histogram::kNumBuckets ? bucket
                                         : Histogram::kNumBuckets - 1;
}

}  // namespace

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::ApproxQuantile(double quantile) const {
  uint64_t total = count();
  if (total == 0) return 0;
  uint64_t target = static_cast<uint64_t>(quantile * total);
  if (target >= total) target = total - 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) {
      return i == 0 ? 0 : (uint64_t{1} << i) - 1;  // bucket upper bound
    }
  }
  return sum();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << name << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    os << name << " count=" << histogram->count()
       << " sum=" << histogram->sum() << " p50=" << histogram->p50()
       << " p90=" << histogram->p90() << " p99=" << histogram->p99() << "\n";
  }
  return os.str();
}

std::vector<MetricSample> MetricsRegistry::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSample s;
    s.kind = "counter";
    s.name = name;
    s.value = static_cast<int64_t>(counter->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample s;
    s.kind = "gauge";
    s.name = name;
    s.value = gauge->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSample s;
    s.kind = "histogram";
    s.name = name;
    s.value = static_cast<int64_t>(histogram->count());
    s.sum = histogram->sum();
    s.p50 = histogram->p50();
    s.p90 = histogram->p90();
    s.p99 = histogram->p99();
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace dynopt
