#ifndef DYNOPT_COMMON_VALUE_H_
#define DYNOPT_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace dynopt {

/// Scalar type tags for the engine's data model. A deliberately small set:
/// the workloads in the paper (TPC-H / TPC-DS join queries) only need
/// integers, floating point, strings and booleans. Dates are stored as
/// kInt64 days-since-epoch (see workloads/).
enum class ValueType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Returns a human-readable name, e.g. "INT64".
const char* ValueTypeName(ValueType type);

/// A dynamically typed scalar. Rows are vectors of `Value`. Values are
/// ordered and hashable so they can serve as join/group keys; comparisons
/// across numeric types (int64 vs double) coerce to double, all other
/// cross-type comparisons order by type tag.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(int v) : data_(static_cast<int64_t>(v)) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kBool;
      case 2:
        return ValueType::kInt64;
      case 3:
        return ValueType::kDouble;
      case 4:
        return ValueType::kString;
    }
    return ValueType::kNull;
  }
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  /// AsString without the std::get throw-on-mismatch check, for kernel
  /// loops that have already dispatched on type().
  const std::string& AsStringUnchecked() const {
    return *std::get_if<std::string>(&data_);
  }

  /// Numeric view used by the statistics sketches: int64/double/bool map to
  /// their numeric value; strings map to a stable order-ignoring hash-based
  /// encoding; null maps to NaN. Use only for sketching, not semantics.
  double NumericKey() const;

  /// True if this value is numeric (kInt64 or kDouble or kBool).
  bool IsNumeric() const;

  /// Approximate in-memory footprint in bytes, used by the cost model.
  size_t SizeBytes() const;

  /// Stable 64-bit hash suitable for partitioning and hash joins.
  uint64_t Hash() const;

  /// Total ordering consistent with operator==; see class comment for the
  /// cross-type rules. Null sorts before everything.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

/// A tuple of scalars; column order is defined by the owning schema.
using Row = std::vector<Value>;

/// Approximate footprint of a row (sum of value footprints).
size_t RowSizeBytes(const Row& row);

/// Hash of a subset of columns (used to route rows to partitions and to
/// build join hash tables over composite keys).
uint64_t HashRowKey(const Row& row, const std::vector<int>& key_indices);

}  // namespace dynopt

#endif  // DYNOPT_COMMON_VALUE_H_
