#ifndef DYNOPT_COMMON_BACKOFF_H_
#define DYNOPT_COMMON_BACKOFF_H_

#include <algorithm>

namespace dynopt {

/// Capped exponential backoff between retries of a failed task. Delays are
/// *simulated* seconds (the retrying node sits idle that long in the cost
/// model); nothing actually sleeps. Attempt numbering starts at 0 for the
/// first execution, so attempt k's retry waits
/// min(initial * multiplier^k, cap).
struct BackoffPolicy {
  double initial_seconds = 0.05;
  double multiplier = 2.0;
  double cap_seconds = 1.0;
  /// Total executions allowed per task (first try + retries). Exhausting
  /// them escalates the task failure to a query-level transient error.
  int max_attempts = 4;

  double Delay(int attempt) const {
    double d = initial_seconds;
    for (int i = 0; i < attempt; ++i) {
      d *= multiplier;
      if (d >= cap_seconds) break;
    }
    return std::min(d, cap_seconds);
  }
};

}  // namespace dynopt

#endif  // DYNOPT_COMMON_BACKOFF_H_
