#ifndef DYNOPT_COMMON_BACKOFF_H_
#define DYNOPT_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "common/hash.h"

namespace dynopt {

/// Capped exponential backoff between retries of a failed task. Delays are
/// *simulated* seconds (the retrying node sits idle that long in the cost
/// model); nothing actually sleeps. Attempt numbering starts at 0 for the
/// first execution, so attempt k's retry waits
/// min(initial * multiplier^k, cap).
struct BackoffPolicy {
  double initial_seconds = 0.05;
  double multiplier = 2.0;
  double cap_seconds = 1.0;
  /// Total executions allowed per task (first try + retries). Exhausting
  /// them escalates the task failure to a query-level transient error.
  int max_attempts = 4;

  /// Jitter spread as a fraction of the base delay: attempt k's jittered
  /// delay is uniform in [delay*(1-f), delay*(1+f)). Zero (the default)
  /// disables jitter entirely — JitteredDelay() then returns Delay()
  /// bit-for-bit, so existing metering is unchanged. Under cluster-wide
  /// fault injection, jitter decorrelates the retry waves that would
  /// otherwise land on the cluster in lockstep.
  double jitter_fraction = 0.0;
  /// Seed of the jitter hash; like the FaultInjector, every draw is a pure
  /// function of (seed, site, attempt) so a configuration reproduces the
  /// same delays on every run regardless of thread scheduling.
  uint64_t jitter_seed = 0;

  double Delay(int attempt) const {
    double d = initial_seconds;
    for (int i = 0; i < attempt; ++i) {
      d *= multiplier;
      if (d >= cap_seconds) break;
    }
    return std::min(d, cap_seconds);
  }

  /// Delay(attempt) spread by deterministic jitter. `site` identifies the
  /// retrying task (callers mix stage/node/kernel ids into it) so distinct
  /// tasks retrying after the same shared failure draw independent delays
  /// and do not re-synchronize into a retry storm.
  double JitteredDelay(uint64_t site, int attempt) const {
    const double base = Delay(attempt);
    if (jitter_fraction <= 0.0) return base;
    const uint64_t h = Mix64(HashCombine(Mix64(jitter_seed ^ site),
                                         Mix64(static_cast<uint64_t>(attempt))));
    // 53-bit mantissa draw -> uniform [0, 1).
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return base * (1.0 + jitter_fraction * (2.0 * u - 1.0));
  }
};

}  // namespace dynopt

#endif  // DYNOPT_COMMON_BACKOFF_H_
