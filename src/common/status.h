#ifndef DYNOPT_COMMON_STATUS_H_
#define DYNOPT_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace dynopt {

/// Error categories used across the library. Mirrors the coarse categories a
/// database engine cares about; most call sites only test `ok()`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kBindError,
  kExecutionError,
  /// Transient infrastructure fault (lost node, failed task): the operation
  /// may succeed if retried, possibly from a checkpoint.
  kTransient,
  /// Detected corruption of stored bytes (checksum mismatch): the data must
  /// be re-materialized; retrying the read alone cannot help.
  kDataCorruption,
  /// The query was cancelled cooperatively (explicit CancellationToken or
  /// an expired deadline). Terminal by definition: the caller asked for the
  /// work to stop, so recovery machinery must never re-drive it.
  kCancelled,
  /// A resource governor refused the work: admission queue overflow or
  /// timeout, or an engine memory budget that cannot be reserved. Retrying
  /// immediately would hit the same wall; the caller should shed load or
  /// wait for capacity, so this is excluded from IsRetryable.
  kResourceExhausted,
};

/// True for error categories a caller may recover from by re-executing the
/// failed work (against a fresh copy of the data for kDataCorruption).
/// Fatal categories — bad plans, missing tables, logic errors — stay false:
/// re-running them yields the same failure. kCancelled and
/// kResourceExhausted are deliberately excluded too: a cancelled query must
/// never be retried on the user's behalf, and an overloaded engine is not
/// helped by immediate re-submission (RunWithRecovery relies on both).
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kTransient || code == StatusCode::kDataCorruption;
}

/// Lightweight status object returned by fallible operations. The library
/// does not use exceptions (per the project style rules); every public
/// operation that can fail returns `Status` or `Result<T>`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Transient(std::string msg) {
    return Status(StatusCode::kTransient, std::move(msg));
  }
  static Status DataCorruption(std::string msg) {
    return Status(StatusCode::kDataCorruption, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  /// True when the failure is worth retrying (see IsRetryable above).
  bool retryable() const { return IsRetryable(code_); }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad join key".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`. Modeled after
/// `arrow::Result`; accessing the value of an errored result aborts.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : value_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOkStatus = Status::OK();
    if (ok()) return kOkStatus;
    return std::get<Status>(value_);
  }

  T& value() & { return std::get<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T&& value() && { return std::move(std::get<T>(value_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> value_;
};

}  // namespace dynopt

/// Propagates a non-OK Status out of the enclosing function.
#define DYNOPT_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::dynopt::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define DYNOPT_CONCAT_IMPL(x, y) x##y
#define DYNOPT_CONCAT(x, y) DYNOPT_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>), propagates the error, otherwise
/// move-assigns the value into `lhs` (which may include a declaration).
#define DYNOPT_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  auto DYNOPT_CONCAT(_res_, __LINE__) = (rexpr);                      \
  if (!DYNOPT_CONCAT(_res_, __LINE__).ok())                           \
    return DYNOPT_CONCAT(_res_, __LINE__).status();                   \
  lhs = std::move(DYNOPT_CONCAT(_res_, __LINE__)).value()

#endif  // DYNOPT_COMMON_STATUS_H_
