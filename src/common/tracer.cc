#include "common/tracer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace dynopt {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string FormatNumber(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// One complete-event object, shared by the batch exporter and the
/// streaming sink so both emit byte-identical records.
std::string EventJson(const TraceEvent& e) {
  std::ostringstream os;
  os << "{\"name\": " << JsonQuote(e.name) << ", \"cat\": "
     << JsonQuote(e.category) << ", \"ph\": \"X\", \"pid\": 1, \"tid\": "
     << e.tid << ", \"ts\": " << FormatNumber(e.start_ns / 1000.0)
     << ", \"dur\": " << FormatNumber(e.dur_ns / 1000.0);
  os << ", \"args\": {\"depth\": " << e.depth;
  for (const auto& [key, value] : e.args) {
    os << ", " << JsonQuote(key) << ": " << value;
  }
  os << "}}";
  return os.str();
}

}  // namespace

Tracer::Tracer() : epoch_ns_(SteadyNowNs()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

uint64_t Tracer::NowNs() const { return SteadyNowNs() - epoch_ns_; }

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> t_buffer;
  if (t_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      buffer->tid = next_tid_++;
      buffers_.push_back(buffer);
    }
    t_buffer = std::move(buffer);
  }
  return t_buffer.get();
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer* buffer = LocalBuffer();
  event.tid = buffer->tid;
  if (streaming_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(stream_mu_);
    // Re-check: a CloseStream between the relaxed load and the lock sends
    // this span to the thread buffer instead of dropping it.
    if (stream_ != nullptr) {
      const std::string json = EventJson(event);
      if (!stream_first_) std::fputs(",\n", stream_);
      stream_first_ = false;
      std::fputs("  ", stream_);
      std::fputs(json.c_str(), stream_);
      // Flushed per event on purpose: a streaming trace exists to be
      // tailed while the workload runs (and to survive a crash mid-run).
      std::fflush(stream_);
      return;
    }
  }
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Drain() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> all;
  for (auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    for (auto& event : buffer->events) all.push_back(std::move(event));
    buffer->events.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  return all;
}

int Tracer::CurrentDepth() { return LocalBuffer()->depth; }

Status Tracer::OpenStream(const std::string& path) {
  std::lock_guard<std::mutex> lock(stream_mu_);
  if (stream_ != nullptr) {
    return Status::ExecutionError("trace stream already open: " +
                                  stream_path_);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open trace stream: " + path);
  }
  std::fputs("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n", f);
  stream_ = f;
  stream_path_ = path;
  stream_first_ = true;
  streaming_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

Status Tracer::CloseStream() {
  std::lock_guard<std::mutex> lock(stream_mu_);
  if (stream_ == nullptr) {
    return Status::ExecutionError("no trace stream open");
  }
  streaming_.store(false, std::memory_order_relaxed);
  std::fputs("\n]}\n", stream_);
  const bool failed = std::ferror(stream_) != 0;
  std::fclose(stream_);
  stream_ = nullptr;
  const std::string path = std::move(stream_path_);
  stream_path_.clear();
  if (failed) {
    return Status::ExecutionError("write error on trace stream: " + path);
  }
  return Status::OK();
}

TraceSpan::TraceSpan(std::string name, std::string category) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.start_ns = tracer.NowNs();
  Tracer::ThreadBuffer* buffer = tracer.LocalBuffer();
  event_.depth = buffer->depth++;
}

void TraceSpan::AddArg(const std::string& key, double value) {
  if (!active_) return;
  event_.args.emplace_back(key, FormatNumber(value));
}

void TraceSpan::AddArg(const std::string& key, const std::string& value) {
  if (!active_) return;
  event_.args.emplace_back(key, JsonQuote(value));
}

void TraceSpan::End() {
  if (!active_) return;
  active_ = false;
  Tracer& tracer = Tracer::Global();
  event_.dur_ns = tracer.NowNs() - event_.start_ns;
  tracer.LocalBuffer()->depth--;
  tracer.Record(std::move(event_));
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const auto& e : events) {
    if (!first) os << ",\n";
    first = false;
    os << "  " << EventJson(e);
  }
  os << "\n]}\n";
  return os.str();
}

Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open trace file: " + path);
  }
  std::string json = ChromeTraceJson(events);
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::ExecutionError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace dynopt
