#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>

namespace dynopt {

namespace {

int InitialLogLevel() {
  LogLevel level = LogLevel::kWarn;
  if (const char* env = std::getenv("DYNOPT_LOG_LEVEL")) {
    ParseLogLevel(env, &level);
  }
  return static_cast<int>(level);
}

std::atomic<int> g_log_level{-1};  // -1: not yet initialized from the env

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  int level = g_log_level.load();
  if (level < 0) {
    // First use: adopt the env override (or the default). A concurrent
    // SetLogLevel wins the race — compare-exchange only replaces the
    // uninitialized sentinel.
    int initial = InitialLogLevel();
    if (g_log_level.compare_exchange_strong(level, initial)) {
      level = initial;
    }
  }
  return static_cast<LogLevel>(level);
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

bool ParseLogLevel(const char* name, LogLevel* out) {
  if (name == nullptr) return false;
  std::string lower;
  for (const char* p = name; *p; ++p) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning" || lower == "2") {
    *out = LogLevel::kWarn;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace internal
}  // namespace dynopt
