#include "common/logging.h"

#include <atomic>

namespace dynopt {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::string line = stream_.str();
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace internal
}  // namespace dynopt
