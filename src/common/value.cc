#include "common/value.h"

#include <cmath>
#include <cstdio>

#include "common/hash.h"

namespace dynopt {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

bool Value::IsNumeric() const {
  ValueType t = type();
  return t == ValueType::kBool || t == ValueType::kInt64 ||
         t == ValueType::kDouble;
}

double Value::NumericKey() const {
  switch (type()) {
    case ValueType::kNull:
      return std::nan("");
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kString:
      // Stable numeric encoding for sketching: strings are mapped through a
      // hash. Range estimates over strings are therefore meaningless, which
      // matches the paper (range predicates only appear on numeric/date
      // columns); distinct-count estimates remain exact in distribution.
      return static_cast<double>(HashString(AsString()) >> 11);
  }
  return std::nan("");
}

size_t Value::SizeBytes() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return 16 + AsString().size();
  }
  return 1;
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kBool:
      return Mix64(AsBool() ? 1 : 0);
    case ValueType::kInt64:
      return Mix64(static_cast<uint64_t>(AsInt64()));
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash integral doubles identically to the equal int64 so that
      // cross-type join keys behave consistently with Compare().
      if (d == static_cast<double>(static_cast<int64_t>(d)) &&
          std::abs(d) < 9.0e18) {
        return Mix64(static_cast<uint64_t>(static_cast<int64_t>(d)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(d));
      return Mix64(bits);
    }
    case ValueType::kString:
      return HashString(AsString());
  }
  return 0;
}

namespace {

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  // Numeric cross-type comparison coerces to double.
  if (IsNumeric() && other.IsNumeric()) {
    double da = a == ValueType::kInt64 ? static_cast<double>(AsInt64())
                : a == ValueType::kBool ? (AsBool() ? 1.0 : 0.0)
                                        : AsDouble();
    double db = b == ValueType::kInt64 ? static_cast<double>(other.AsInt64())
                : b == ValueType::kBool ? (other.AsBool() ? 1.0 : 0.0)
                                        : other.AsDouble();
    return CompareDoubles(da, db);
  }
  if (a != b) return a < b ? -1 : 1;
  switch (a) {
    case ValueType::kNull:
      return 0;
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // Unreachable: numeric handled above.
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t RowSizeBytes(const Row& row) {
  size_t total = 8;  // Row header overhead.
  for (const Value& v : row) total += v.SizeBytes();
  return total;
}

uint64_t HashRowKey(const Row& row, const std::vector<int>& key_indices) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (int idx : key_indices) {
    h = HashCombine(h, row[static_cast<size_t>(idx)].Hash());
  }
  return h;
}

}  // namespace dynopt
