#ifndef DYNOPT_COMMON_MEMORY_TRACKER_H_
#define DYNOPT_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace dynopt {

/// Hierarchical, lock-free memory accountant: engine budget -> per-query
/// reservation -> per-operator accounting. Every tracker counts bytes
/// reserved against an optional budget (0 == unlimited) and forwards each
/// reservation to its parent, so the engine-level tracker always sees the
/// sum of every live query's working set and a single query cannot starve
/// the rest of the fleet unnoticed.
///
/// TryReserve fails *softly*: it returns false and leaves the tracker
/// unchanged. Callers pick the degradation themselves — the hash join
/// spills to disk, the admission controller keeps the query queued — so a
/// memory shortage degrades a query instead of killing it.
///
/// The reserve/release hot path is lock-free; construction and destruction
/// additionally register/unregister the tracker in its parent's child list
/// (mutex-guarded) so introspection (`sys.memory`) can enumerate the live
/// engine -> query -> operator hierarchy via VisitTree.
class MemoryTracker {
 public:
  /// `budget_bytes` == 0 means unlimited (pure accounting). `parent` may be
  /// null (root tracker). The parent must outlive this tracker.
  explicit MemoryTracker(uint64_t budget_bytes = 0,
                         MemoryTracker* parent = nullptr,
                         std::string label = "")
      : budget_(budget_bytes), parent_(parent), label_(std::move(label)) {
    if (parent_ != nullptr) parent_->AddChild(this);
  }

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  ~MemoryTracker() {
    // Unregister first: after this returns no VisitTree walk can reach the
    // tracker, and a walk already touching it blocks the removal (it holds
    // the parent's child-list mutex), so members are never read mid-death.
    if (parent_ != nullptr) parent_->RemoveChild(this);
    // Whatever is still accounted here was forwarded to the parent when it
    // was reserved; hand it back so a destroyed query tracker cannot leak
    // engine-level budget.
    uint64_t leftover = used_.load(std::memory_order_relaxed);
    if (leftover > 0 && parent_ != nullptr) parent_->Release(leftover);
  }

  /// Attempts to reserve `bytes` here and (recursively) in every ancestor.
  /// On any budget violation along the chain nothing is reserved anywhere
  /// and false is returned.
  bool TryReserve(uint64_t bytes) {
    if (bytes == 0) return true;
    if (!TryReserveLocal(bytes)) return false;
    if (parent_ != nullptr && !parent_->TryReserve(bytes)) {
      ReleaseLocal(bytes);
      return false;
    }
    return true;
  }

  /// Unconditional accounting (never fails, may exceed the budget). Used
  /// for working sets the executor will hold regardless — the budget then
  /// shows as over-subscription in used() rather than being silently wrong.
  void ReserveUnchecked(uint64_t bytes) {
    if (bytes == 0) return;
    AddLocal(bytes);
    if (parent_ != nullptr) parent_->ReserveUnchecked(bytes);
  }

  /// Returns `bytes` previously reserved (through either path).
  void Release(uint64_t bytes) {
    if (bytes == 0) return;
    ReleaseLocal(bytes);
    if (parent_ != nullptr) parent_->Release(bytes);
  }

  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t budget() const { return budget_.load(std::memory_order_relaxed); }
  /// 0-budget trackers report UINT64_MAX available.
  uint64_t available() const {
    uint64_t b = budget();
    if (b == 0) return ~uint64_t{0};
    uint64_t u = used();
    return u >= b ? 0 : b - u;
  }
  void set_budget(uint64_t budget_bytes) {
    budget_.store(budget_bytes, std::memory_order_relaxed);
  }
  void ResetPeak() { peak_.store(used(), std::memory_order_relaxed); }

  MemoryTracker* parent() const { return parent_; }
  const std::string& label() const { return label_; }

  /// Depth-first walk of this tracker and every live descendant, calling
  /// `fn(tracker, depth)` with depth 0 at this node. Child lists are locked
  /// parent-before-child while walking (the same order registration uses),
  /// so walks are deadlock-free and never observe a half-destroyed child;
  /// trackers created or destroyed concurrently may or may not appear.
  void VisitTree(
      const std::function<void(const MemoryTracker&, int)>& fn) const {
    VisitTreeAtDepth(0, fn);
  }

 private:
  void VisitTreeAtDepth(
      int depth,
      const std::function<void(const MemoryTracker&, int)>& fn) const {
    fn(*this, depth);
    std::lock_guard<std::mutex> lock(children_mu_);
    for (const MemoryTracker* child : children_) {
      child->VisitTreeAtDepth(depth + 1, fn);
    }
  }

  void AddChild(MemoryTracker* child) {
    std::lock_guard<std::mutex> lock(children_mu_);
    children_.push_back(child);
  }

  void RemoveChild(MemoryTracker* child) {
    std::lock_guard<std::mutex> lock(children_mu_);
    for (auto it = children_.begin(); it != children_.end(); ++it) {
      if (*it == child) {
        children_.erase(it);
        return;
      }
    }
  }

  bool TryReserveLocal(uint64_t bytes) {
    uint64_t b = budget();
    uint64_t cur = used_.load(std::memory_order_relaxed);
    for (;;) {
      if (b != 0 && cur + bytes > b) return false;
      if (used_.compare_exchange_weak(cur, cur + bytes,
                                      std::memory_order_relaxed)) {
        UpdatePeak(cur + bytes);
        return true;
      }
    }
  }

  void AddLocal(uint64_t bytes) {
    uint64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    UpdatePeak(now);
  }

  void ReleaseLocal(uint64_t bytes) {
    // Saturating subtract: a mismatched release clamps at zero instead of
    // wrapping into an absurd used() that would wedge every TryReserve.
    uint64_t cur = used_.load(std::memory_order_relaxed);
    for (;;) {
      uint64_t next = cur >= bytes ? cur - bytes : 0;
      if (used_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
        return;
      }
    }
  }

  void UpdatePeak(uint64_t now) {
    uint64_t p = peak_.load(std::memory_order_relaxed);
    while (now > p &&
           !peak_.compare_exchange_weak(p, now, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> budget_;
  MemoryTracker* parent_;
  std::string label_;
  mutable std::mutex children_mu_;
  std::vector<MemoryTracker*> children_;
};

/// RAII reservation against one tracker: releases what it holds on
/// destruction. Movable, not copyable.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  explicit MemoryReservation(MemoryTracker* tracker) : tracker_(tracker) {}
  MemoryReservation(MemoryReservation&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      ReleaseAll();
      tracker_ = other.tracker_;
      bytes_ = other.bytes_;
      other.tracker_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;
  ~MemoryReservation() { ReleaseAll(); }

  /// Grows the reservation by `bytes`; false (and no change) on refusal.
  bool TryGrow(uint64_t bytes) {
    if (tracker_ == nullptr) return true;  // Ungoverned: vacuously granted.
    if (!tracker_->TryReserve(bytes)) return false;
    bytes_ += bytes;
    return true;
  }

  /// Grows unconditionally (accounting-only callers).
  void GrowUnchecked(uint64_t bytes) {
    if (tracker_ == nullptr) return;
    tracker_->ReserveUnchecked(bytes);
    bytes_ += bytes;
  }

  void ReleaseAll() {
    if (tracker_ != nullptr && bytes_ > 0) tracker_->Release(bytes_);
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }
  MemoryTracker* tracker() const { return tracker_; }

 private:
  MemoryTracker* tracker_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace dynopt

#endif  // DYNOPT_COMMON_MEMORY_TRACKER_H_
