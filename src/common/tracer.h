#ifndef DYNOPT_COMMON_TRACER_H_
#define DYNOPT_COMMON_TRACER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dynopt {

/// One completed span. Timestamps are nanoseconds on the steady clock,
/// relative to the tracer's epoch (process start), so subtracting two spans'
/// start_ns is meaningful within a process and Chrome/Perfetto render them on
/// a shared timeline.
struct TraceEvent {
  std::string name;      // "query:dynamic", "reopt-2", "join-build", ...
  std::string category;  // "query" | "opt" | "job" | "stage" | "kernel"
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;  // small per-thread integer assigned on first use
  int depth = 0;     // nesting depth on this thread when the span opened
  /// Extra annotations rendered into the Chrome-trace "args" object. Values
  /// are pre-encoded JSON fragments (numbers bare, strings quoted) so the
  /// exporter can splice them in verbatim.
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-wide span collector. Spans append to a per-thread buffer (no
/// cross-thread contention on the hot path; each buffer has its own mutex so
/// Drain() from another thread is race-free under TSan) and are collected
/// with Drain() at query end.
///
/// Disabled (the default) the tracer is a no-op: TraceSpan's constructor is
/// one relaxed atomic load and nothing is allocated or recorded, and tracing
/// never touches ExecMetrics — so `simulated_seconds` and all other metering
/// stay byte-for-byte identical whether tracing is on or off (pinned by
/// tests/tracer_test.cc).
///
/// Drain() collects every buffered span in the process, so the intended use
/// is profiling one query at a time (the bench harness and EXPLAIN ANALYZE
/// both follow enable -> run -> drain -> disable).
class Tracer {
 public:
  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Nanoseconds since the tracer epoch (steady clock).
  uint64_t NowNs() const;

  /// Appends a completed event to the calling thread's buffer.
  void Record(TraceEvent event);

  /// Moves all buffered events out of every thread buffer, sorted by
  /// start_ns. Spans still open stay with their TraceSpan and are lost if
  /// the tracer is disabled before they end.
  std::vector<TraceEvent> Drain();

  /// Current nesting depth of the calling thread (spans opened, not yet
  /// ended). Exposed for tests.
  int CurrentDepth();

  /// Streaming sink: opens `path`, writes the Chrome-trace document header,
  /// and from then on every completed span is flushed straight to the file
  /// instead of accumulating in the thread buffers — so a long sustained
  /// run (bench_throughput with tracing on) holds O(1) span memory instead
  /// of growing until the final Drain(). Drain() keeps working for spans
  /// recorded while no stream was open. Fails when a stream is already
  /// open; the batch exporters (Drain + WriteChromeTrace) are unaffected.
  Status OpenStream(const std::string& path);

  /// Finalizes and closes the streaming document (the file is valid
  /// Chrome-trace JSON only after this). Fails when no stream is open or
  /// the underlying writes failed.
  Status CloseStream();

  /// True while a streaming sink is open.
  bool streaming() const {
    return streaming_.load(std::memory_order_relaxed);
  }

 private:
  friend class TraceSpan;

  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    uint32_t tid = 0;
    int depth = 0;  // touched only by the owning thread
  };

  Tracer();
  ThreadBuffer* LocalBuffer();

  std::atomic<bool> enabled_{false};
  uint64_t epoch_ns_ = 0;  // steady-clock ns at construction
  std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_tid_ = 0;

  /// Streaming-sink state. streaming_ is the hot-path gate (one relaxed
  /// load in Record when no stream is open); the rest is guarded by
  /// stream_mu_. Record re-checks under the mutex, so a span racing a
  /// CloseStream falls back to its thread buffer instead of being lost.
  std::atomic<bool> streaming_{false};
  std::mutex stream_mu_;
  std::FILE* stream_ = nullptr;
  bool stream_first_ = true;
  std::string stream_path_;
};

/// RAII scoped span. Construction samples the clock and bumps the thread's
/// nesting depth; End() (or the destructor) samples again and records the
/// completed event. All methods are no-ops when the tracer was disabled at
/// construction time.
class TraceSpan {
 public:
  TraceSpan(std::string name, std::string category);
  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return active_; }

  /// Attach a numeric annotation (rendered bare in the Chrome-trace args).
  void AddArg(const std::string& key, double value);
  /// Attach a string annotation (quoted + escaped by the exporter).
  void AddArg(const std::string& key, const std::string& value);
  /// Convenience for the standard simulated-seconds annotation.
  void SetSimSeconds(double seconds) { AddArg("sim_seconds", seconds); }

  /// Ends the span early (idempotent). Lets a query-level span close before
  /// the tracer is drained at query end.
  void End();

 private:
  bool active_ = false;
  TraceEvent event_;
};

/// Renders events as a Chrome-trace ("chrome://tracing" / Perfetto) JSON
/// document: {"displayTimeUnit":"ms","traceEvents":[...]} with complete
/// ("ph":"X") events and microsecond timestamps.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Writes ChromeTraceJson(events) to `path`.
Status WriteChromeTrace(const std::string& path,
                        const std::vector<TraceEvent>& events);

}  // namespace dynopt

#endif  // DYNOPT_COMMON_TRACER_H_
