#ifndef DYNOPT_COMMON_THREAD_POOL_H_
#define DYNOPT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dynopt {

/// Fixed-size worker pool used to execute the per-partition work of a
/// physical operator in parallel — the simulator's stand-in for the
/// node-parallel execution of a Hyracks job. Tasks are void closures;
/// ParallelFor blocks until every index has been processed.
class ThreadPool {
 public:
  /// `num_threads` == 0 selects hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, n), distributing across workers, and
  /// waits for completion. Work is chunked into ~num_threads contiguous
  /// blocks (not one task per index), and the calling thread executes
  /// blocks too, so nested and concurrent ParallelFor calls cannot
  /// deadlock: a caller can always drain its own loop even when every
  /// worker is busy.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dynopt

#endif  // DYNOPT_COMMON_THREAD_POOL_H_
